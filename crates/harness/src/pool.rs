//! Scoped worker-thread pool with deterministic work partitioning.
//!
//! The simulator is single-threaded and deterministic; what runs in
//! parallel is the *grid around it* — experiment cells, fleet devices,
//! batch hashing — which is embarrassingly parallel. This module gives
//! that fan-out a fixed contract:
//!
//! * **Deterministic partitioning** — work is split into chunks whose
//!   boundaries are computed purely from the input, never from scheduler
//!   state. The *static* path ([`map_ordered`]) hands one contiguous
//!   chunk to each worker; the *dynamic* path ([`map_ordered_dynamic`])
//!   splits the input into many small fixed-boundary chunks that workers
//!   claim from a shared atomic cursor as they finish previous ones.
//! * **Ordered collection** — results come back in input order no matter
//!   how the OS schedules the threads.
//!
//! Together these make `map_ordered*(items, 1, f)` and
//! `map_ordered*(items, n, f)` produce *identical* output vectors whenever
//! `f` is a pure function of its item, which is exactly the property the
//! reproducibility tests assert (see `tests/hermetic_determinism.rs` at
//! the workspace root and `tests/dynamic_pool.rs` in this crate).
//!
//! ## Static vs dynamic
//!
//! The static path has zero coordination but poor load balance: with
//! contiguous per-worker chunks, the slowest *chunk* bounds the wall
//! clock, so one expensive region of the input strands every other core.
//! The dynamic path trades one relaxed atomic `fetch_add` per chunk for
//! greedy load balancing — a worker that drew a cheap chunk immediately
//! claims the next unclaimed one — which is the classic list-scheduling
//! bound: makespan ≤ (total work)/workers + max single item. *Which*
//! worker computes an item becomes scheduler-dependent; *what* is
//! computed and *where the result lands* do not, so byte-identity across
//! worker counts is preserved for pure cell functions. Use the dynamic
//! path whenever per-item runtimes are skewed (multi-tenant fleet
//! devices, mixed-size experiment grids) and the static path when items
//! are uniform and coordination must be zero.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a requested worker count: `0` means "size to the machine",
/// and the result is clamped to `[1, items]` so no thread sits idle.
pub fn effective_workers(requested: usize, items: usize) -> usize {
    let hw = || {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    };
    let w = if requested == 0 { hw() } else { requested };
    w.max(1).min(items.max(1))
}

/// The contiguous chunk bounds `[start, end)` owned by `worker` when
/// `items` items are split over `workers` workers: the first
/// `items % workers` chunks get one extra item. Purely arithmetic —
/// this is the partitioning contract the determinism tests rely on.
pub fn chunk_bounds(items: usize, workers: usize, worker: usize) -> (usize, usize) {
    debug_assert!(worker < workers);
    let base = items / workers;
    let extra = items % workers;
    let start = worker * base + worker.min(extra);
    let len = base + usize::from(worker < extra);
    (start, start + len)
}

/// Apply `f` to every item on up to `workers` scoped OS threads
/// (`0` ⇒ machine parallelism) and return results in input order.
///
/// Each worker owns one contiguous chunk of the input (see
/// [`chunk_bounds`]); a panic in any worker propagates to the caller.
pub fn map_ordered<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(workers, items.len());
    if items.is_empty() {
        return Vec::new();
    }
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let mut chunks: Vec<Option<Vec<R>>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (start, end) = chunk_bounds(items.len(), workers, w);
            let slice = &items[start..end];
            let f = &f;
            handles.push(s.spawn(move || slice.iter().map(f).collect::<Vec<R>>()));
        }
        for (slot, h) in chunks.iter_mut().zip(handles) {
            match h.join() {
                Ok(v) => *slot = Some(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    chunks
        .into_iter()
        .flat_map(|c| c.expect("every worker reports its chunk"))
        .collect()
}

/// The fixed chunk bounds `[start, end)` of chunk `index` when `items`
/// items are split into chunks of `chunk` items each (the last chunk may
/// be short). Purely arithmetic in `(items, chunk, index)` — the worker
/// count never moves a boundary, which is what keeps the dynamic
/// scheduler's output worker-count-independent even for impure cell
/// functions that observe their chunk-mates.
pub fn dynamic_chunk_bounds(items: usize, chunk: usize, index: usize) -> (usize, usize) {
    let chunk = chunk.max(1);
    let start = (index * chunk).min(items);
    (start, (start + chunk).min(items))
}

/// Apply `f` to every item with *dynamic* chunk claiming: the input is
/// split into fixed-boundary chunks of `chunk` items, workers claim the
/// next unclaimed chunk from a shared atomic cursor, and results are
/// collected in input order.
///
/// Identical output contract to [`map_ordered`] — for a pure `f`, any
/// worker count produces the same vector, byte for byte — but with
/// greedy load balancing: a worker finishing a cheap chunk immediately
/// takes the next one, so skewed per-item runtimes no longer strand
/// cores the way static contiguous partitioning does.
///
/// A panic in `f` propagates to the caller (other workers drain the
/// remaining chunks first, exactly like the static path's join).
pub fn map_ordered_dynamic_chunked<T, R, F>(
    items: &[T],
    workers: usize,
    chunk: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk = chunk.max(1);
    let workers = effective_workers(workers, items.len().div_ceil(chunk));
    if items.is_empty() {
        return Vec::new();
    }
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<R>>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            handles.push(s.spawn(move || {
                let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let (start, end) = dynamic_chunk_bounds(items.len(), chunk, c);
                    mine.push((c, items[start..end].iter().map(f).collect()));
                }
                mine
            }));
        }
        for h in handles {
            match h.join() {
                Ok(done) => {
                    for (c, v) in done {
                        debug_assert!(slots[c].is_none(), "chunk {c} claimed twice");
                        slots[c] = Some(v);
                    }
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    slots
        .into_iter()
        .flat_map(|c| c.expect("every chunk claimed exactly once"))
        .collect()
}

/// [`map_ordered_dynamic_chunked`] with single-item chunks — the right
/// default when each item is expensive (a whole device replay, a whole
/// experiment cell) and the atomic claim is noise by comparison.
pub fn map_ordered_dynamic<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_ordered_dynamic_chunked(items, workers, 1, f)
}

/// Run `f(worker_index)` once on each of `workers` scoped threads and
/// return the results indexed by worker. The low-level entry point for
/// callers that manage their own partitioning.
pub fn run_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    let mut out: Vec<Option<R>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let f = &f;
            handles.push(s.spawn(move || f(w)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            match h.join() {
                Ok(v) => *slot = Some(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    out.into_iter().map(|r| r.expect("worker result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for items in [0usize, 1, 2, 7, 64, 101] {
            for workers in 1usize..9 {
                let mut covered = 0usize;
                let mut expect_start = 0usize;
                for w in 0..workers {
                    let (s, e) = chunk_bounds(items, workers, w);
                    assert_eq!(s, expect_start, "gap at worker {w}");
                    assert!(e >= s);
                    covered += e - s;
                    expect_start = e;
                }
                assert_eq!(covered, items, "items={items} workers={workers}");
                assert_eq!(expect_start, items);
            }
        }
    }

    #[test]
    fn map_ordered_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 3, 8, 300] {
            let out = map_ordered(&items, workers, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The determinism contract: any worker count, same output bytes.
        let items: Vec<u64> = (0..100).map(|i| i * i).collect();
        let serial = map_ordered(&items, 1, |&x| format!("{:x}", x.wrapping_mul(0x9E3779B97F4A7C15)));
        for workers in [2, 4, 7, 16] {
            assert_eq!(map_ordered(&items, workers, |&x| format!("{:x}", x.wrapping_mul(0x9E3779B97F4A7C15))), serial);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = map_ordered(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_means_machine_sized() {
        let items = [1u32, 2, 3];
        assert_eq!(map_ordered(&items, 0, |&x| x + 1), vec![2, 3, 4]);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert_eq!(effective_workers(4, 0), 1);
    }

    #[test]
    fn dynamic_chunk_bounds_cover_exactly_once() {
        for items in [0usize, 1, 2, 7, 64, 101] {
            for chunk in [1usize, 2, 3, 16, 200] {
                let n_chunks = items.div_ceil(chunk);
                let mut expect_start = 0usize;
                for c in 0..n_chunks {
                    let (s, e) = dynamic_chunk_bounds(items, chunk, c);
                    assert_eq!(s, expect_start, "gap at chunk {c}");
                    assert!(e > s, "empty chunk {c} for items={items} chunk={chunk}");
                    expect_start = e;
                }
                assert_eq!(expect_start, items, "items={items} chunk={chunk}");
                // Out-of-range indices collapse to empty tail chunks.
                let (s, e) = dynamic_chunk_bounds(items, chunk, n_chunks + 3);
                assert_eq!((s, e), (items, items));
            }
        }
    }

    #[test]
    fn dynamic_matches_serial_for_any_worker_count_and_chunk() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 300] {
            for chunk in [1, 2, 7, 64, 500] {
                let out = map_ordered_dynamic_chunked(&items, workers, chunk, |&x| x * 3 + 1);
                assert_eq!(out, serial, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn dynamic_empty_and_zero_workers() {
        let out: Vec<u32> = map_ordered_dynamic(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
        let items = [1u32, 2, 3];
        assert_eq!(map_ordered_dynamic(&items, 0, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "boom-dynamic")]
    fn dynamic_worker_panic_propagates() {
        map_ordered_dynamic(&[1u32, 2, 3, 4], 2, |&x| {
            if x == 3 {
                panic!("boom-dynamic");
            }
            x
        });
    }

    #[test]
    fn run_workers_indexes_results() {
        let out = run_workers(5, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        map_ordered(&[1u32, 2, 3, 4], 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
