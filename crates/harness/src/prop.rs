//! A minimal property-testing runner.
//!
//! Replaces the `proptest` dependency for this workspace's needs: seeded
//! case generation (on [`cagc_sim::SimRng`], so property tests share the
//! simulator's deterministic PRNG), composable [`Strategy`] value
//! generators, bounded shrinking on failure, and a macro surface
//! ([`harness_proptest!`](crate::harness_proptest), `prop_assert!`)
//! close enough to proptest's that the existing property-test files port
//! mechanically:
//!
//! ```
//! use cagc_harness::prop::*;
//!
//! cagc_harness::harness_proptest! {
//!     #![config(cases = 64)]
//!     /// Reversing twice is the identity. (In a test file this would
//!     /// also carry `#[test]`.)
//!     fn double_reverse_is_identity(xs in vec(any::<u64>(), 0..50)) {
//!         let mut twice = xs.clone();
//!         twice.reverse();
//!         twice.reverse();
//!         prop_assert_eq!(twice, xs);
//!     }
//! }
//! # fn main() { double_reverse_is_identity(); }
//! ```
//!
//! Every run is reproducible: case seeds derive from the test name via
//! [`cagc_sim::derive_seed`], and `HARNESS_PROP_SEED` / `HARNESS_PROP_CASES`
//! environment variables re-seed or re-size a run without recompiling.

use cagc_sim::rng::SimRng;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A failed property check, carrying the failure message. Test bodies
/// produce these through `prop_assert!` (early return) or by mapping
/// their own error types via [`TestCaseError::fail`].
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap any displayable error as a test-case failure.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How a property test runs: number of generated cases and the shrink
/// budget spent minimizing a failure.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases to generate (default 64; override per test with
    /// `#![config(cases = N)]` or globally with `HARNESS_PROP_CASES`).
    pub cases: u32,
    /// Maximum accepted shrink steps before reporting the current minimum.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64, max_shrink_steps: 200 }
    }
}

impl Config {
    /// A config running `cases` cases (the `#![config(cases = N)]` form).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

/// A generator of test values: produces a value from seeded randomness
/// and proposes smaller candidates when that value exposes a failure.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Candidate simplifications of `v`, "smallest" first. An empty vec
    /// means fully shrunk. Each candidate must be strictly simpler than
    /// `v` by some well-founded measure so shrinking terminates.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value>;
}

// ---------------------------------------------------------------------
// Integer range strategies.
// ---------------------------------------------------------------------

/// Integer types usable as `lo..hi` strategies.
pub trait RangeInt: Copy + PartialOrd + Debug {
    /// Widen to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Narrow back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),+) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )+};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl<T: RangeInt> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        T::from_u64(rng.gen_range_u64(self.start.to_u64()..self.end.to_u64()))
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        let (lo, x) = (self.start.to_u64(), v.to_u64());
        let mut out = Vec::new();
        if x > lo {
            out.push(T::from_u64(lo));
            let mid = lo + (x - lo) / 2;
            if mid != lo {
                out.push(T::from_u64(mid));
            }
            out.push(T::from_u64(x - 1));
        }
        out
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SimRng) -> f64 {
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        // Shrink toward the lower bound; stop once the step is negligible
        // relative to the range so shrinking terminates.
        let span = (self.end - self.start).abs().max(f64::MIN_POSITIVE);
        if (v - self.start).abs() > span * 1e-6 {
            out.push(self.start);
            out.push(self.start + (v - self.start) / 2.0);
        }
        out
    }
}

// ---------------------------------------------------------------------
// `any::<T>()` — full-domain strategies for primitives.
// ---------------------------------------------------------------------

/// The full value domain of `T` as a strategy (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over every value of a primitive type, like proptest's
/// `any::<T>()`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SimRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let x = *v;
                let mut out = Vec::new();
                if x > 0 {
                    out.push(0);
                    if x / 2 != 0 {
                        out.push(x / 2);
                    }
                    out.push(x - 1);
                }
                out
            }
        }
    )+};
}
impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut SimRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SimRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.next_f64() * f64::from(u32::MAX);
        if rng.gen_bool(0.5) {
            mag
        } else {
            -mag
        }
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        if v.abs() > 1e-9 {
            vec![0.0, v / 2.0]
        } else {
            Vec::new()
        }
    }
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// Strategy for `Vec<S::Value>` with length drawn from a range
/// (see [`vec()`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector strategy: lengths uniform in `len`, elements from `element`
/// — proptest's `prop::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<S::Value> {
        let n = rng.gen_range_usize(self.len.start..self.len.end);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Structural shrinks first: drop the back half, then one element.
        if v.len() > min {
            let half = (v.len() / 2).max(min);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            out.push(v[..v.len() - 1].to_vec());
        }
        // Then element-wise shrinks — every candidate the element strategy
        // proposes, on a bounded number of slots to keep the set small.
        for i in 0..v.len().min(16) {
            for smaller in self.element.shrink(&v[i]) {
                let mut w = v.clone();
                w[i] = smaller;
                out.push(w);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$v:ident/$i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut w = v.clone();
                        w.$i = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/a/0)
    (A/a/0, B/b/1)
    (A/a/0, B/b/1, C/c/2)
    (A/a/0, B/b/1, C/c/2, D/d/3)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4)
    (A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5)
}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

fn root_seed() -> u64 {
    std::env::var("HARNESS_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CA6C_2021_0913)
}

fn env_cases() -> Option<u32> {
    std::env::var("HARNESS_PROP_CASES").ok().and_then(|s| s.parse().ok())
}

fn eval<V: Clone, F>(f: &F, v: &V) -> Result<(), TestCaseError>
where
    F: Fn(V) -> Result<(), TestCaseError>,
{
    match catch_unwind(AssertUnwindSafe(|| f(v.clone()))) {
        Ok(r) => r,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            Err(TestCaseError::fail(format!("panicked: {msg}")))
        }
    }
}

/// Mix a standalone per-case seed from the test's root seed and the case
/// index (splitmix64 finalizer). Every case draws from its own
/// `SimRng::seed_from_u64(case_seed(..))` stream, so any single failing
/// case replays in isolation — that one seed, recorded in a sibling
/// `.harness-regressions` file, pins the counterexample forever.
pub fn case_seed(test_seed: u64, case: u32) -> u64 {
    let mut z = test_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Locate the regression file sibling to `source_file` (the test file's
/// `file!()` path with extension `.harness-regressions`). `file!()` paths
/// are workspace-root-relative while test binaries run from the package
/// directory, so the path is tried as-is and then joined against every
/// ancestor of `CARGO_MANIFEST_DIR`.
fn regressions_path(source_file: &str) -> Option<std::path::PathBuf> {
    let sibling = std::path::Path::new(source_file).with_extension("harness-regressions");
    if sibling.exists() {
        return Some(sibling);
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    std::path::Path::new(&manifest)
        .ancestors()
        .map(|base| base.join(&sibling))
        .find(|p| p.exists())
}

/// Parse recorded case seeds for `test` from the sibling regression file.
/// Line format (one regression per line, `#` starts a comment):
///
/// ```text
/// cc <test_name> 0x<case_seed_hex>   # optional note
/// ```
///
/// Returns `(line_number, case_seed)` pairs; lines for other tests or in
/// other formats are ignored.
fn recorded_seeds(source_file: &str, test: &str) -> Vec<(usize, u64)> {
    let Some(path) = regressions_path(source_file) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") || parts.next() != Some(test) {
            continue;
        }
        let seed = parts.next().and_then(|tok| {
            tok.strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .or_else(|| tok.parse().ok())
        });
        if let Some(s) = seed {
            out.push((i + 1, s));
        }
    }
    out
}

/// Shrink a failing value to a minimal counterexample and panic with the
/// replay recipe. `origin` says where the case came from (generated case
/// number or recorded regression line).
#[allow(clippy::too_many_arguments)]
fn shrink_and_panic<S, F>(
    name: &str,
    cfg: Config,
    strat: &S,
    f: &F,
    value: S::Value,
    err: TestCaseError,
    cseed: u64,
    origin: &str,
) -> !
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // Shrink: greedily accept the first failing candidate until no
    // candidate fails or the budget runs out.
    let mut current = value;
    let mut current_err = err;
    let mut steps = 0u32;
    'shrinking: while steps < cfg.max_shrink_steps {
        for cand in strat.shrink(&current) {
            if let Err(e) = eval(f, &cand) {
                current = cand;
                current_err = e;
                steps += 1;
                continue 'shrinking;
            }
        }
        break;
    }

    panic!(
        "property `{name}` failed {origin} \
         (case seed {cseed:#x}, {steps} shrink steps)\n\
         minimal failing input: {current:?}\n\
         error: {current_err}\n\
         pin it: add `cc {name} {cseed:#x}` to the test file's sibling \
         `.harness-regressions` so the case replays before novel ones"
    );
}

/// Run the property `f` over `cfg.cases` values generated by `strat`.
///
/// Each case draws from its own seeded stream (see [`case_seed`]). On
/// failure the input is shrunk (bounded by `cfg.max_shrink_steps`
/// accepted simplifications) and the minimal failing value is reported
/// in the panic message together with the one seed needed to replay it.
///
/// # Panics
/// Panics when a case fails — this is the test-failure path.
pub fn run<S, F>(name: &str, cfg: Config, strat: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    run_with_source(name, cfg, None, strat, f);
}

/// [`run`], plus regression replay: when `source_file` (the test file's
/// `file!()`) has a sibling `<stem>.harness-regressions`, every case seed
/// recorded there for this test is generated and checked *before* any
/// novel cases — previously-found counterexamples stay found. The
/// [`harness_proptest!`](crate::harness_proptest) macro routes here.
///
/// # Panics
/// Panics when a case fails — this is the test-failure path.
pub fn run_with_source<S, F>(name: &str, cfg: Config, source_file: Option<&str>, strat: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = cagc_sim::derive_seed(root_seed(), name);
    let cases = env_cases().unwrap_or(cfg.cases).max(1);

    if let Some(src) = source_file {
        for (line, cseed) in recorded_seeds(src, name) {
            let mut rng = SimRng::seed_from_u64(cseed);
            let value = strat.generate(&mut rng);
            if let Err(err) = eval(&f, &value) {
                let origin = format!("on recorded regression (line {line} of the sibling of {src})");
                shrink_and_panic(name, cfg, &strat, &f, value, err, cseed, &origin);
            }
        }
    }

    for case in 0..cases {
        let cseed = case_seed(seed, case);
        let mut rng = SimRng::seed_from_u64(cseed);
        let value = strat.generate(&mut rng);
        if let Err(err) = eval(&f, &value) {
            let origin = format!("at case {case}/{cases}");
            shrink_and_panic(name, cfg, &strat, &f, value, err, cseed, &origin);
        }
    }
}

// ---------------------------------------------------------------------
// Macro surface.
// ---------------------------------------------------------------------

/// Assert a condition inside a property body; on failure the case is
/// reported (and shrunk) rather than aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// `prop_assert!` for inequality, printing the offending value on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l
        );
    }};
}

/// Define property tests with proptest-style syntax:
///
/// ```ignore
/// harness_proptest! {
///     #![config(cases = 32)]           // optional
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, ys in vec(any::<u8>(), 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each test generates its arguments from the listed strategies, runs
/// the body per case, and shrinks failures to a minimal counterexample
/// (see [`prop::run`](crate::prop::run)).
#[macro_export]
macro_rules! harness_proptest {
    (#![config(cases = $cases:expr)] $($rest:tt)+) => {
        $crate::harness_proptest!(@impl ($cases) $($rest)+);
    };
    (@impl ($cases:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::prop::run_with_source(
                    ::core::stringify!($name),
                    $crate::prop::Config::with_cases($cases),
                    ::core::option::Option::Some(::core::file!()),
                    ($($strat,)+),
                    |__value| {
                        let ($($arg,)+) = __value;
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )+
    };
    ($($rest:tt)+) => {
        $crate::harness_proptest!(@impl (64) $($rest)+);
    };
}

// Make the macros importable through `use cagc_harness::prop::*`, the
// way the test files' single glob import expects.
pub use crate::{harness_proptest, prop_assert, prop_assert_eq, prop_assert_ne};

#[cfg(test)]
mod tests {
    use super::*;

    fn fails_when(pred: impl Fn(&u64) -> bool + Copy) -> impl Fn(u64) -> Result<(), TestCaseError> + Copy {
        move |v| {
            if pred(&v) {
                Err(TestCaseError::fail("violated"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        run("always_ok", Config::with_cases(50), 10u64..20, |v| {
            count.set(count.get() + 1);
            if (10..20).contains(&v) {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("{v} out of range")))
            }
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failure_shrinks_to_boundary() {
        // Property "v < 57" fails for v in [57, 1000); the minimal
        // counterexample is exactly 57 and shrinking must find it.
        let r = catch_unwind(AssertUnwindSafe(|| {
            run("shrink_to_57", Config::default(), 0u64..1000, fails_when(|&v| v >= 57));
        }));
        let msg = *r.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("minimal failing input: 57"), "got: {msg}");
    }

    #[test]
    fn vec_failures_shrink_structurally() {
        // Fails when any element is >= 100: minimal case is a vec with one
        // element, exactly 100.
        let r = catch_unwind(AssertUnwindSafe(|| {
            run(
                "shrink_vec",
                Config::default(),
                vec(0u64..1000, 1..50),
                |xs| {
                    if xs.iter().any(|&x| x >= 100) {
                        Err(TestCaseError::fail("big element"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = *r.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("minimal failing input: [100]"), "got: {msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run("panic_case", Config::default(), 0u64..100, |v| {
                assert!(v < 3, "v was {v}");
                Ok(())
            });
        }));
        let msg = *r.expect_err("must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("minimal failing input: 3"), "got: {msg}");
        assert!(msg.contains("panicked"), "got: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let collect = |name: &str| {
            let mut out = Vec::new();
            let strat = (0u64..1_000_000, vec(any::<u8>(), 0..10));
            let mut rng = SimRng::seed_from_u64(cagc_sim::derive_seed(root_seed(), name));
            for _ in 0..20 {
                out.push(strat.generate(&mut rng));
            }
            out
        };
        assert_eq!(collect("a"), collect("a"));
        assert_ne!(collect("a"), collect("b"));
    }

    #[test]
    fn tuple_shrink_simplifies_each_component() {
        let strat = (0u64..100, 0u64..100);
        let cands = strat.shrink(&(10, 20));
        assert!(cands.iter().any(|&(a, b)| a < 10 && b == 20));
        assert!(cands.iter().any(|&(a, b)| a == 10 && b < 20));
        assert!(strat.shrink(&(0, 0)).is_empty());
    }

    #[test]
    fn float_range_strategy_respects_bounds() {
        let strat = 0.25f64..0.75;
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((0.25..0.75).contains(&v));
        }
        assert!(strat.shrink(&0.25).is_empty(), "lower bound is fully shrunk");
    }

    #[test]
    fn bool_and_any_strategies_cover_domain() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut saw = [false, false];
        for _ in 0..100 {
            saw[usize::from(any::<bool>().generate(&mut rng))] = true;
        }
        assert_eq!(saw, [true, true]);
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<u64>().shrink(&0).is_empty());
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..100).map(|c| case_seed(7, c)).collect();
        let b: Vec<u64> = (0..100).map(|c| case_seed(7, c)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "case seeds must not collide");
        assert_ne!(case_seed(7, 0), case_seed(8, 0), "root seed must matter");
    }

    /// A seed recorded in the sibling `.harness-regressions` file replays
    /// before any novel case: the failure message names the recorded
    /// regression, and lines for other tests or in foreign formats are
    /// ignored.
    #[test]
    fn recorded_regressions_replay_before_novel_cases() {
        let dir = std::env::temp_dir().join("cagc_harness_regression_replay_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let src = dir.join("fake_prop_file.rs");
        let reg = dir.join("fake_prop_file.harness-regressions");
        std::fs::write(
            &reg,
            "# header comment\n\
             cc other_prop 0x1\n\
             cc 714a66dc13ffb1341a5060b1460083fb # legacy proptest hash, skipped\n\
             cc my_prop 0x2a # pinned counterexample\n",
        )
        .expect("write regressions file");

        // The property fails on exactly the value seed 0x2a generates.
        let mut rng = SimRng::seed_from_u64(0x2a);
        let bad = (0u64..1_000_000).generate(&mut rng);
        let src_str = src.to_str().expect("utf8 path").to_string();
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_with_source(
                "my_prop",
                Config::with_cases(1),
                Some(&src_str),
                0u64..1_000_000,
                fails_when(move |&v| v == bad),
            );
        }));
        let msg = *r.expect_err("recorded case must fail").downcast::<String>().expect("string panic");
        assert!(msg.contains("recorded regression"), "got: {msg}");
        assert!(msg.contains("0x2a"), "got: {msg}");

        // A property that no longer fails sails through replay + novel cases.
        run_with_source("my_prop", Config::with_cases(4), Some(&src_str), 0u64..1_000_000, |_| Ok(()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
