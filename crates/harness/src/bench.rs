//! A micro-benchmark runner.
//!
//! Replaces the `criterion` dependency for this workspace: warmup, a
//! fixed number of timed samples, a median/p95/min report on stdout, and
//! a machine-readable `BENCH_<suite>.json` artifact (via [`crate::json`])
//! next to the working directory. The API mirrors the slice of criterion
//! the bench files used — groups, `bench_function`, `bench_with_input`,
//! `iter`/`iter_batched`, throughput annotation — so they port
//! mechanically:
//!
//! ```no_run
//! use cagc_harness::bench::{Bench, Bencher};
//!
//! fn bench_sum(c: &mut Bench) {
//!     let mut g = c.benchmark_group("sums");
//!     g.bench_function("naive", |b: &mut Bencher| {
//!         b.iter(|| (0..1000u64).sum::<u64>())
//!     });
//!     g.finish();
//! }
//!
//! cagc_harness::harness_bench_main!(bench_sum);
//! ```
//!
//! Set `HARNESS_BENCH_FAST=1` to run each benchmark with a minimal
//! sample budget — used by smoke tests so `cargo test` stays fast.

use crate::json::{Json, ToJson};
use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion users
/// expect.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `"<name>/<parameter>"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter as the id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Work-per-iteration annotation, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Hint for `iter_batched` setup cost amortization. The runner times one
/// routine invocation per sample either way; the variants exist so call
/// sites keep criterion's vocabulary.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Cheap inputs.
    SmallInput,
    /// Expensive inputs (setup dominates; never amortized).
    LargeInput,
}

/// One measured benchmark: per-iteration nanoseconds across samples.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/id` path.
    pub path: String,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Fastest sample ns/iter.
    pub min_ns: f64,
    /// 95th-percentile sample ns/iter.
    pub p95_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Declared throughput of one iteration, if any.
    pub throughput: Option<Throughput>,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let (kind, amount) = match self.throughput {
            Some(Throughput::Bytes(b)) => ("bytes", Some(b)),
            Some(Throughput::Elements(e)) => ("elements", Some(e)),
            None => ("none", None),
        };
        Json::obj([
            ("name", Json::Str(self.path.clone())),
            ("median_ns", Json::F64(self.median_ns)),
            ("min_ns", Json::F64(self.min_ns)),
            ("p95_ns", Json::F64(self.p95_ns)),
            ("samples", Json::U64(self.samples as u64)),
            ("throughput_kind", Json::Str(kind.to_string())),
            ("throughput_per_iter", amount.to_json()),
        ])
    }
}

/// Measurement budget for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    samples: usize,
    target_sample_time: Duration,
}

impl Budget {
    fn new(samples: usize) -> Self {
        if fast_mode() {
            Budget {
                warmup: Duration::from_millis(2),
                samples: samples.min(5),
                target_sample_time: Duration::from_micros(200),
            }
        } else {
            Budget {
                warmup: Duration::from_millis(60),
                samples,
                target_sample_time: Duration::from_millis(2),
            }
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("HARNESS_BENCH_FAST").is_some_and(|v| v != "0")
}

/// The per-benchmark measurement driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    budget: Budget,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(budget: Budget) -> Self {
        Bencher { budget, samples_ns: Vec::new() }
    }

    /// Measure `f` called in a tight loop: warmup, then `samples` timed
    /// batches sized so each batch runs ≥ the target sample time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup, and estimate the per-iteration cost while at it.
        let warmup_started = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_started.elapsed() < self.budget.warmup || warmup_iters == 0 {
            std_black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warmup_started.elapsed().as_nanos() as f64 / warmup_iters as f64).max(0.5);
        let batch = ((self.budget.target_sample_time.as_nanos() as f64 / est_ns).ceil() as u64).clamp(1, 10_000_000);

        for _ in 0..self.budget.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Measure `routine` on fresh input from `setup` each sample; the
    /// setup runs outside the timed window.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // One warmup round so code and caches are hot.
        std_black_box(routine(setup()));
        for _ in 0..self.budget.samples {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn result(mut self, path: String, throughput: Option<Throughput>) -> BenchResult {
        self.samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let n = self.samples_ns.len();
        assert!(n > 0, "benchmark `{path}` recorded no samples — missing b.iter(..)?");
        let at = |q: f64| self.samples_ns[((q * n as f64) as usize).min(n - 1)];
        BenchResult {
            path,
            median_ns: at(0.5),
            min_ns: self.samples_ns[0],
            p95_ns: at(0.95),
            samples: n,
            throughput,
        }
    }
}

/// The top-level benchmark driver (criterion's `Criterion` role): owns
/// collected results and writes the JSON artifact at the end of `main`.
#[derive(Debug)]
pub struct Bench {
    suite: String,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A driver for the named suite (normally the bench binary's crate
    /// name, supplied by [`crate::harness_bench_main!`]).
    pub fn new(suite: impl Into<String>) -> Self {
        let suite = suite.into();
        eprintln!("# cagc-harness bench suite `{suite}`{}", if fast_mode() { " (fast mode)" } else { "" });
        Bench { suite, results: Vec::new() }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
            throughput: None,
            sample_size: 30,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self {
        let id = id.into();
        let mut g = Group {
            bench: self,
            name: String::new(),
            throughput: None,
            sample_size: 30,
        };
        g.bench_function(id, f);
        self
    }

    fn record(&mut self, r: BenchResult) {
        println!("{}", render_line(&r));
        self.results.push(r);
    }

    /// Print the footer and write `BENCH_<suite>.json`. Called by
    /// [`crate::harness_bench_main!`] after every bench fn has run.
    pub fn finish(self) {
        let out = Json::obj([
            ("suite", Json::Str(self.suite.clone())),
            ("results", Json::Arr(self.results.iter().map(ToJson::to_json).collect())),
        ])
        .render();
        let path = format!("BENCH_{}.json", self.suite);
        match std::fs::write(&path, &out) {
            Ok(()) => eprintln!("# {} results -> {path}", self.results.len()),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl Group<'_> {
    /// Annotate per-iteration work so the report includes throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let id = id.into();
        let path = if self.name.is_empty() {
            id.0
        } else {
            format!("{}/{}", self.name, id.0)
        };
        let mut b = Bencher::new(Budget::new(self.sample_size));
        f(&mut b);
        let r = b.result(path, self.throughput);
        self.bench.record(r);
        self
    }

    /// Run one benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for criterion-API compatibility; groups have
    /// no deferred work).
    pub fn finish(&mut self) {}
}

fn render_line(r: &BenchResult) -> String {
    let mut line = format!(
        "{:<44} median {:>10}  min {:>10}  p95 {:>10}",
        r.path,
        fmt_ns(r.median_ns),
        fmt_ns(r.min_ns),
        fmt_ns(r.p95_ns),
    );
    if let Some(t) = r.throughput {
        let per_sec = |amount: u64| amount as f64 / (r.median_ns / 1e9);
        match t {
            Throughput::Bytes(bytes) => {
                line.push_str(&format!("  thrpt {:>11}/s", fmt_bytes(per_sec(bytes))));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt {:>11.0} elem/s", per_sec(n)));
            }
        }
    }
    line
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes(bytes_per_sec: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.2} GiB", bytes_per_sec / GIB)
    } else if bytes_per_sec >= MIB {
        format!("{:.2} MiB", bytes_per_sec / MIB)
    } else if bytes_per_sec >= KIB {
        format!("{:.2} KiB", bytes_per_sec / KIB)
    } else {
        format!("{bytes_per_sec:.0} B")
    }
}

/// Generate `fn main()` for a bench binary (`harness = false` target):
/// runs each listed bench fn against one [`Bench`] and writes the JSON
/// artifact.
#[macro_export]
macro_rules! harness_bench_main {
    ($($bench_fn:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Bench::new(env!("CARGO_CRATE_NAME"));
            $($bench_fn(&mut c);)+
            c.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bencher() -> Bencher {
        Bencher::new(Budget {
            warmup: Duration::from_micros(100),
            samples: 7,
            target_sample_time: Duration::from_micros(50),
        })
    }

    #[test]
    fn iter_collects_the_requested_samples() {
        let mut b = fast_bencher();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        let r = b.result("g/x".into(), None);
        assert_eq!(r.samples, 7);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = fast_bencher();
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::LargeInput,
        );
        let r = b.result("g/batched".into(), Some(Throughput::Bytes(64)));
        assert_eq!(r.samples, 7);
        assert!(r.to_json().render().contains("\"throughput_kind\":\"bytes\""));
    }

    #[test]
    fn benchmark_ids_compose_paths() {
        assert_eq!(BenchmarkId::new("hit", 1000).0, "hit/1000");
        assert_eq!(BenchmarkId::from_parameter("sha1").0, "sha1");
    }

    #[test]
    fn render_line_includes_throughput() {
        let r = BenchResult {
            path: "hash/sha1".into(),
            median_ns: 4096.0,
            min_ns: 4000.0,
            p95_ns: 4200.0,
            samples: 30,
            throughput: Some(Throughput::Bytes(4096)),
        };
        let line = render_line(&r);
        assert!(line.contains("hash/sha1"), "{line}");
        assert!(line.contains("4.10 µs"), "{line}");
        // 4096 B per 4096 ns = 1 byte/ns ≈ 953.67 MiB/s.
        assert!(line.contains("953.67 MiB/s"), "{line}");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }
}
