//! A tiny JSON serializer.
//!
//! The workspace needs exactly one serialization direction — Rust report
//! structs out to JSON artifacts (`BENCH_*.json`, experiment exports) —
//! and nothing else a full serde stack provides. This module is that one
//! direction: an explicit [`Json`] tree, deterministic rendering (object
//! keys keep insertion order, numbers render via Rust's shortest
//! round-trip formatting), and a [`ToJson`] trait report types implement
//! by hand. No derive machinery, no external crates.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly; never goes through `f64`).
    U64(u64),
    /// A signed integer (rendered exactly).
    I64(i64),
    /// A floating-point number. Non-finite values render as `null` since
    /// JSON has no representation for them.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by converting each element with [`ToJson`].
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Render to a compact JSON string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree — the hand-written replacement for
/// `#[derive(Serialize)]`.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(*self))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::I64(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_exactly() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-42).render(), "-42");
        assert_eq!(Json::F64(0.134).render(), "0.134");
        assert_eq!(Json::F64(1.0).render(), "1");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("plain".into()).render(), "\"plain\"");
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
        assert_eq!(Json::Str("µs → done".into()).render(), "\"µs → done\"");
    }

    #[test]
    fn containers_render_in_order() {
        let j = Json::obj([
            ("name", Json::Str("fig9".into())),
            ("erases", Json::U64(13400)),
            ("series", Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"fig9","erases":13400,"series":[1,2,3],"empty":[]}"#
        );
    }

    #[test]
    fn to_json_blanket_impls_compose() {
        let v: Vec<u64> = vec![7, 8];
        assert_eq!(v.to_json().render(), "[7,8]");
        assert_eq!(Some("x").to_json().render(), "\"x\"");
        assert_eq!(Option::<u64>::None.to_json().render(), "null");
        assert_eq!(Json::arr(["a", "b"]).render(), r#"["a","b"]"#);
    }

    #[test]
    fn large_u64_survives_exactly() {
        // The reason Json has integer variants: 2^63 + 3 is not
        // representable in f64.
        let n = (1u64 << 63) + 3;
        assert_eq!(Json::U64(n).render(), format!("{n}"));
    }
}
