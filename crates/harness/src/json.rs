//! A tiny JSON serializer.
//!
//! The workspace needs exactly one serialization direction — Rust report
//! structs out to JSON artifacts (`BENCH_*.json`, experiment exports) —
//! and nothing else a full serde stack provides. This module is that one
//! direction: an explicit [`Json`] tree, deterministic rendering (object
//! keys keep insertion order, numbers render via Rust's shortest
//! round-trip formatting), and a [`ToJson`] trait report types implement
//! by hand. No derive machinery, no external crates.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly; never goes through `f64`).
    U64(u64),
    /// A signed integer (rendered exactly).
    I64(i64),
    /// A floating-point number. Non-finite values render as `null` since
    /// JSON has no representation for them.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by converting each element with [`ToJson`].
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Render to a compact JSON string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse a JSON document (the inverse of [`Json::render`]).
    ///
    /// Accepts any standard JSON text. Integers without a fraction,
    /// exponent, or overflow parse to [`Json::U64`] / [`Json::I64`];
    /// everything else numeric becomes [`Json::F64`]. Object key order is
    /// kept as written, so `parse(render(x)) == x` for trees the
    /// serializer can emit (non-finite floats excluded — they render as
    /// `null`).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the raw input bytes. JSON's grammar is
/// LL(1), so one byte of lookahead (`peek`) is all the machinery needed.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. The input is a
                    // &str and `pos` only ever advances by whole scalars, so
                    // the leading byte gives the sequence length directly.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("bad utf-8")),
                    };
                    let end = self.pos + len;
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // The scan above is permissive; `str::parse` below enforces the
        // exact numeric grammar and rejects shapes like `1.2.3`.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::F64(x)),
            Err(_) => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }
}

/// Conversion into a [`Json`] tree — the hand-written replacement for
/// `#[derive(Serialize)]`.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::U64(u64::from(*self))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::I64(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_exactly() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-42).render(), "-42");
        assert_eq!(Json::F64(0.134).render(), "0.134");
        assert_eq!(Json::F64(1.0).render(), "1");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("plain".into()).render(), "\"plain\"");
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
        assert_eq!(Json::Str("µs → done".into()).render(), "\"µs → done\"");
    }

    #[test]
    fn containers_render_in_order() {
        let j = Json::obj([
            ("name", Json::Str("fig9".into())),
            ("erases", Json::U64(13400)),
            ("series", Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"fig9","erases":13400,"series":[1,2,3],"empty":[]}"#
        );
    }

    #[test]
    fn to_json_blanket_impls_compose() {
        let v: Vec<u64> = vec![7, 8];
        assert_eq!(v.to_json().render(), "[7,8]");
        assert_eq!(Some("x").to_json().render(), "\"x\"");
        assert_eq!(Option::<u64>::None.to_json().render(), "null");
        assert_eq!(Json::arr(["a", "b"]).render(), r#"["a","b"]"#);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let j = Json::obj([
            ("name", Json::Str("fig9 µs\n\"quoted\"".into())),
            ("erases", Json::U64(u64::MAX)),
            ("delta", Json::I64(-17)),
            ("ratio", Json::F64(0.134)),
            ("flag", Json::Bool(false)),
            ("none", Json::Null),
            (
                "series",
                Json::Arr(vec![Json::U64(1), Json::F64(2.5), Json::Str("x".into())]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = j.render();
        let back = Json::parse(&text).expect("round-trip parse");
        assert_eq!(back, j);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 ,\t-2, 3.5e2 ] ,\n \"b\" : \"\\u0041\\ud83d\\ude00\" } ")
            .unwrap();
        assert_eq!(
            j,
            Json::Obj(vec![
                (
                    "a".into(),
                    Json::Arr(vec![Json::U64(1), Json::I64(-2), Json::F64(350.0)])
                ),
                ("b".into(), Json::Str("A😀".into())),
            ])
        );
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("0").unwrap(), Json::U64(0));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(Json::parse("-9223372036854775808").unwrap(), Json::I64(i64::MIN));
        assert_eq!(Json::parse("1.0").unwrap(), Json::F64(1.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        // Magnitudes past the integer types degrade to f64 rather than fail.
        assert!(matches!(Json::parse("18446744073709551616").unwrap(), Json::F64(_)));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "tru", "[1,", "{\"a\":}", "{\"a\" 1}", "\"open", "01x", "1.2.3",
            "[1] trailing", "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "expected parse failure for {bad:?}");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn large_u64_survives_exactly() {
        // The reason Json has integer variants: 2^63 + 3 is not
        // representable in f64.
        let n = (1u64 << 63) + 3;
        assert_eq!(Json::U64(n).render(), format!("{n}"));
    }
}
