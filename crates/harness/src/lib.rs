//! # cagc-harness — zero-dependency test/bench/concurrency substrate
//!
//! The enabling layer that keeps this workspace hermetically buildable:
//! `cargo build --release --offline && cargo test -q --offline` must
//! succeed from a clean checkout with no registry access, so everything
//! the repo previously pulled from crates.io lives here instead, sized
//! to exactly what the workspace uses:
//!
//! | module | replaces | what it is |
//! |--------|----------|------------|
//! | [`pool`] | `crossbeam` scoped threads, `parking_lot` | scoped worker pool with deterministic partitioning and ordered results |
//! | [`prop`] | `proptest` | seeded property-test runner: strategies, bounded shrinking, `harness_proptest!` |
//! | [`bench`](mod@bench) | `criterion` | micro-benchmark runner: warmup, median/p95/min report, `BENCH_*.json` |
//! | [`json`] | `serde` derive | explicit [`json::Json`] tree + [`json::ToJson`] trait, deterministic rendering |
//!
//! Randomness comes from [`cagc_sim::SimRng`] — the same deterministic
//! generator the simulator itself uses — so a property-test seed, a
//! workload seed, and a victim-policy seed all reproduce identically on
//! any platform.
//!
//! Design rule: this crate may depend only on `std` and `cagc-sim`.
//! Anything that would pull a third crate belongs elsewhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bench;
pub mod json;
pub mod pool;
pub mod prop;

pub use json::{Json, ToJson};
pub use pool::{map_ordered, map_ordered_dynamic};
pub use prop::{Config as PropConfig, Strategy, TestCaseError};
