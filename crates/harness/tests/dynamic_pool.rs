//! Determinism contract of the dynamic pool scheduler.
//!
//! `map_ordered_dynamic` trades the static path's fixed item→worker
//! assignment for atomic chunk claiming, so *which thread computes an
//! item* is scheduler-dependent — these tests pin down everything that
//! must **not** be: for a pure cell function the output vector is
//! byte-identical to serial `map_ordered` at every worker count, even
//! under adversarially skewed per-item runtimes, and a panicking cell
//! propagates exactly like the static path.

use cagc_harness::pool::{
    dynamic_chunk_bounds, map_ordered, map_ordered_dynamic, map_ordered_dynamic_chunked,
};
use cagc_harness::prop::*;
use std::hint::black_box;

/// A pure cell function whose result depends on every bit of the item.
fn cell(x: &u64) -> String {
    format!("{:016x}", x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ x)
}

/// Burn deterministic CPU time proportional to `units` (no sleeping — a
/// sleeping worker frees its core, which would hide scheduling bugs that
/// only bite when workers genuinely compete).
fn spin(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units * 2_000 {
        acc = acc.wrapping_add(black_box(i).wrapping_mul(0x9E37_79B9));
    }
    black_box(acc)
}

harness_proptest! {
    #![config(cases = 24)]

    /// Dynamic output equals serial `map_ordered` for every worker count,
    /// chunk size, and input shape.
    #[test]
    fn dynamic_is_byte_identical_to_serial(
        items in vec(0u64..u64::MAX, 0..120),
        chunk in 1usize..9,
    ) {
        let serial = map_ordered(&items, 1, cell);
        for workers in [1usize, 2, 3, 8] {
            let dynamic = map_ordered_dynamic_chunked(&items, workers, chunk, cell);
            prop_assert_eq!(&dynamic, &serial, "workers={} chunk={}", workers, chunk);
        }
    }

    /// Chunk boundaries tile the input exactly once for any geometry.
    #[test]
    fn chunk_boundaries_tile_the_input(items in 0usize..500, chunk in 1usize..40) {
        let n_chunks = items.div_ceil(chunk);
        let mut next = 0usize;
        for c in 0..n_chunks {
            let (s, e) = dynamic_chunk_bounds(items, chunk, c);
            prop_assert_eq!(s, next);
            prop_assert!(e > s && e <= items);
            next = e;
        }
        prop_assert_eq!(next, items);
    }
}

/// The adversarial shape the fleet hits in practice: one item is ~100×
/// slower than the rest. Assignment becomes timing-dependent, output must
/// not.
#[test]
fn skewed_runtimes_never_change_output() {
    // 64 items, item 11 is ~100x the work of the others.
    let items: Vec<u64> = (0..64).collect();
    let skewed_cell = |&x: &u64| {
        spin(if x == 11 { 400 } else { 4 });
        cell(&x)
    };
    let serial: Vec<String> = items.iter().map(skewed_cell).collect();
    for workers in [1usize, 2, 3, 8] {
        for chunk in [1usize, 3] {
            let out = map_ordered_dynamic_chunked(&items, workers, chunk, skewed_cell);
            assert_eq!(out, serial, "workers={workers} chunk={chunk}");
        }
        let out = map_ordered_dynamic(&items, workers, skewed_cell);
        assert_eq!(out, serial, "workers={workers} chunk=1 (default)");
    }
}

/// A panic in a dynamic cell reaches the caller, matching the static
/// path's behavior (`pool::tests::worker_panic_propagates`).
#[test]
fn dynamic_panic_propagation_matches_static() {
    let items: Vec<u64> = (0..32).collect();
    let poison = |&x: &u64| {
        if x == 17 {
            panic!("poisoned item");
        }
        x * 2
    };
    let static_panic =
        std::panic::catch_unwind(|| map_ordered(&items, 4, poison)).unwrap_err();
    let dynamic_panic =
        std::panic::catch_unwind(|| map_ordered_dynamic(&items, 4, poison)).unwrap_err();
    let msg = |p: &Box<dyn std::any::Any + Send>| {
        p.downcast_ref::<&str>().map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .expect("panic payload is a string")
    };
    assert_eq!(msg(&static_panic), "poisoned item");
    assert_eq!(msg(&dynamic_panic), "poisoned item");
}

/// Machine-independent statement of the scheduling win the fleet bench
/// measures in wall-clock time on multicore hosts: replaying the
/// scheduler policies over a *modelled* cost vector (list scheduling for
/// the dynamic claim order, contiguous split for the static one) shows
/// the dynamic makespan beating static partitioning ≥ 5× on the skewed
/// 64-device / 8-worker fleet shape, and within the classic
/// `total/workers + max_item` list-scheduling bound.
#[test]
fn modelled_makespan_dynamic_beats_static_5x_on_skewed_fleet() {
    // 64 devices; the 8 "noisy neighbor" tenants land contiguously at the
    // front of the grid (devices 0..8), each ~100x a quiet device — the
    // exact shape that pins static partitioning's first worker.
    let costs: Vec<u64> = (0..64u64).map(|i| if i < 8 { 100 } else { 1 }).collect();
    let workers = 8usize;

    // Static contiguous split: worker w owns chunk_bounds(items, workers, w).
    let static_makespan: u64 = (0..workers)
        .map(|w| {
            let (s, e) = cagc_harness::pool::chunk_bounds(costs.len(), workers, w);
            costs[s..e].iter().sum::<u64>()
        })
        .max()
        .unwrap();

    // Dynamic claiming: greedy list scheduling — each item goes to the
    // worker that frees up first (what the atomic cursor implements).
    let mut free_at = vec![0u64; workers];
    for &c in &costs {
        let w = (0..workers).min_by_key(|&w| free_at[w]).unwrap();
        free_at[w] += c;
    }
    let dynamic_makespan = *free_at.iter().max().unwrap();

    let total: u64 = costs.iter().sum();
    let bound = total / workers as u64 + costs.iter().max().unwrap();
    assert!(dynamic_makespan <= bound, "{dynamic_makespan} > bound {bound}");
    assert!(
        static_makespan >= 5 * dynamic_makespan,
        "static {static_makespan} vs dynamic {dynamic_makespan}: skew no longer pins \
         the static path — update the fleet bench shape too"
    );
}
