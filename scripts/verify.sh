#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the workspace has zero
# external crate dependencies — see README "Hermetic build").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== docs (offline, no deps) =="
cargo doc --no-deps --offline

echo "== smoke: regenerate Fig. 9 =="
cargo run --release --offline -p cagc-bench --bin repro -- fig9

echo "== smoke: trim sensitivity (asserts honoring < ignoring) =="
cargo run --release --offline --example trim_sensitivity -- --smoke

echo "== smoke: fault sweep + power-loss recovery =="
cargo run --release --offline --example fault_sweep -- --smoke

echo "verify: OK"
