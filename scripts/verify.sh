#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the workspace has zero
# external crate dependencies — see README "Hermetic build").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== docs (offline, no deps, whole workspace, broken links denied) =="
cargo doc --no-deps --offline --workspace

echo "== smoke: regenerate Fig. 9 (tracing disabled => byte-identical CSV) =="
cargo run --release --offline -p cagc-bench --bin repro -- fig9
git diff --exit-code -- results/fig9.csv \
  || { echo "FAIL: untraced repro must regenerate results/fig9.csv byte-identical"; exit 1; }

echo "== smoke: deterministic trace (Chrome JSON, parser round-trip, seed-stable) =="
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -p cagc-bench --bin repro -- \
  --smoke --trace "$TRACE_TMP/a.json" | grep "parser round-trip OK"
cargo run --release --offline -p cagc-bench --bin repro -- \
  --smoke --trace "$TRACE_TMP/b.json" > /dev/null
cmp "$TRACE_TMP/a.json" "$TRACE_TMP/b.json" \
  || { echo "FAIL: same-seed Chrome traces must be byte-identical"; exit 1; }
cmp "$TRACE_TMP/a.jsonl" "$TRACE_TMP/b.jsonl" \
  || { echo "FAIL: same-seed JSONL logs must be byte-identical"; exit 1; }

echo "== smoke: trace analytics (repro inspect: profile, GC anatomy, diff) =="
# Analyzing the JSONL trace from the gate above must reproduce the
# committed inspect goldens byte-identically (the profiler folds spans
# deterministically, and parse -> analyze equals live-replay analyze),
# and the GC anatomy must account for >= 95% of traced GC wall time.
cargo run --release --offline -p cagc-bench --bin repro -- \
  --out results --trace "$TRACE_TMP/a.jsonl" inspect > /dev/null
git diff --exit-code -- results/inspect_profile.csv results/inspect_anatomy.csv results/inspect_flame.txt \
  || { echo "FAIL: repro inspect must regenerate its goldens byte-identical"; exit 1; }
accounted="$(awk -F, '/^total,/{print $6}' results/inspect_anatomy.csv)"
[ "$accounted" -ge 950 ] \
  || { echo "FAIL: GC anatomy accounts for only ${accounted} permille of GC wall time (< 950)"; exit 1; }
# Trace diff: preemption on vs off must show up as per-phase deltas.
cargo run --release --offline -p cagc-bench --bin repro -- \
  --smoke --preempt --trace "$TRACE_TMP/p.json" > /dev/null
cargo run --release --offline -p cagc-bench --bin repro -- \
  --out "$TRACE_TMP/insp" --diff "$TRACE_TMP/a.jsonl" "$TRACE_TMP/p.jsonl" inspect \
  | grep "GC anatomy diff"
grep -q "^gc_wall," "$TRACE_TMP/insp/inspect_diff.csv" \
  || { echo "FAIL: inspect --diff must report a gc_wall delta row"; exit 1; }

echo "== smoke: trim sensitivity (asserts honoring < ignoring) =="
cargo run --release --offline --example trim_sensitivity -- --smoke

echo "== smoke: fault sweep + power-loss recovery =="
cargo run --release --offline --example fault_sweep -- --smoke

echo "== smoke: queue-depth sweep (QD=1 equivalence + byte-determinism) =="
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/qd1" sweep-qd | grep "QD=1 equivalence OK"
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/qd2" sweep-qd > /dev/null
cmp "$TRACE_TMP/qd1/sweep_qd.csv" "$TRACE_TMP/qd2/sweep_qd.csv" \
  || { echo "FAIL: same-seed sweep_qd.csv must be byte-identical"; exit 1; }
cmp "$TRACE_TMP/qd1/gc_preempt_cdf.csv" "$TRACE_TMP/qd2/gc_preempt_cdf.csv" \
  || { echo "FAIL: same-seed gc_preempt_cdf.csv must be byte-identical"; exit 1; }

echo "== smoke: armed resilience is invisible on fault-free devices =="
# --resilient arms the host retry/backoff/deadline policy; with no
# injected faults it must not change a single byte (docs/FAULTS.md).
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/qd3" --resilient sweep-qd > /dev/null
cmp "$TRACE_TMP/qd1/sweep_qd.csv" "$TRACE_TMP/qd3/sweep_qd.csv" \
  || { echo "FAIL: --resilient must not change fault-free sweep_qd.csv"; exit 1; }
cmp "$TRACE_TMP/qd1/gc_preempt_cdf.csv" "$TRACE_TMP/qd3/gc_preempt_cdf.csv" \
  || { echo "FAIL: --resilient must not change fault-free gc_preempt_cdf.csv"; exit 1; }

echo "== smoke: fleet sweep (analytic WAF gate + worker-count byte-determinism) =="
# The dynamic scheduler must be invisible in the output: one worker vs
# machine parallelism, byte-identical CSVs (docs/FLEET.md).
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/fleet1" --workers 1 sweep-fleet \
  | grep "fleet WAF tracks analytic greedy curve"
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/fleet2" --workers 0 sweep-fleet > /dev/null
cmp "$TRACE_TMP/fleet1/sweep_fleet.csv" "$TRACE_TMP/fleet2/sweep_fleet.csv" \
  || { echo "FAIL: sweep_fleet.csv must be byte-identical across worker counts"; exit 1; }
cmp "$TRACE_TMP/fleet1/fleet_qos.csv" "$TRACE_TMP/fleet2/fleet_qos.csv" \
  || { echo "FAIL: fleet_qos.csv must be byte-identical across worker counts"; exit 1; }
cmp "$TRACE_TMP/fleet1/fleet_timeline.csv" "$TRACE_TMP/fleet2/fleet_timeline.csv" \
  || { echo "FAIL: fleet_timeline.csv must be byte-identical across worker counts"; exit 1; }

echo "== smoke: observability is pay-as-you-go (default sweep-fleet vs goldens) =="
# The observability cell arms gauges + SLO tracking for one fleet; every
# other grid cell stays untraced and must keep regenerating the committed
# sweep-fleet goldens byte-identically (docs/OBSERVABILITY.md).
cargo run --release --offline -p cagc-bench --bin repro -- \
  --out results sweep-fleet > /dev/null
git diff --exit-code -- results/sweep_fleet.csv results/fleet_qos.csv results/fleet_timeline.csv \
  || { echo "FAIL: sweep-fleet must regenerate its goldens byte-identical with observability armed"; exit 1; }

echo "== smoke: chaos campaign (graceful degradation + worker-count byte-determinism) =="
# The sweep asserts its own gates (zero-fault cells byte-identical to a
# fault-free fleet; every harsh cell degrades with tenant attribution)
# and prints the token grepped here. Worker counts must be invisible in
# the bytes even when devices degrade mid-replay (docs/FAULTS.md).
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/chaos1" --workers 1 sweep-chaos \
  | grep "chaos gate OK"
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/chaos2" --workers 0 sweep-chaos > /dev/null
cmp "$TRACE_TMP/chaos1/sweep_chaos.csv" "$TRACE_TMP/chaos2/sweep_chaos.csv" \
  || { echo "FAIL: sweep_chaos.csv must be byte-identical across worker counts"; exit 1; }

echo "== perf: fleet fan-out bench vs committed baseline (docs/FLEET.md) =="
# Same retry discipline as the hotpath gate below. The w1-vs-w8 speedup
# floor is only meaningful with real cores behind the workers, so the
# scaling clause is enforced on >= 8-core machines; smaller boxes still
# gate the per-shape medians against the committed baseline.
fleet_speedup_args=()
if [ "$(nproc)" -ge 8 ]; then
  fleet_speedup_args=(--speedup-ref "$TRACE_TMP/bench/BENCH_fleet.json"
    --speedup-ref-name fleet/replay_w1
    --speedup-bench fleet/replay_w8_dynamic --speedup-min 5.0)
fi
mkdir -p "$TRACE_TMP/bench"
fleet_ok=0
for attempt in 1 2 3; do
  [ "$attempt" -gt 1 ] && echo "-- fleet perf gate attempt $attempt (previous attempt hit noise or a regression)"
  rm -f crates/bench/BENCH_fleet.json
  HARNESS_BENCH_FAST=1 cargo bench --offline -p cagc-bench --bench fleet
  mv crates/bench/BENCH_fleet.json "$TRACE_TMP/bench/"
  if cargo run --release --offline -p cagc-bench --bin bench_check -- \
       results/BENCH_fleet.json "$TRACE_TMP/bench/BENCH_fleet.json" \
       ${fleet_speedup_args[@]+"${fleet_speedup_args[@]}"}; then
    fleet_ok=1
    break
  fi
done
if [ "$fleet_ok" -ne 1 ]; then
  echo "FAIL: fleet bench regressed beyond tolerance in all 3 attempts (docs/FLEET.md)"
  exit 1
fi

echo "== perf: hotpath bench vs committed baseline (docs/PERFORMANCE.md) =="
# Smoke-budget run of the hot-path suite (HARNESS_BENCH_FAST trims the
# sample count; medians stay comparable because per-iteration time is
# unchanged). Regressions beyond the tolerance fail like correctness
# bugs; raise CAGC_BENCH_TOLERANCE_PCT on noisy machines.
# cargo runs bench binaries with the package directory as cwd, so the
# fresh artifact lands in crates/bench/; stash it in the temp dir.
# Wall time only ever inflates under competing load, so a strict check is
# retried: one quiet window in three attempts is enough to prove no
# regression, while a real regression fails all three.
mkdir -p "$TRACE_TMP/bench"
perf_ok=0
for attempt in 1 2 3; do
  [ "$attempt" -gt 1 ] && echo "-- perf gate attempt $attempt (previous attempt hit noise or a regression)"
  rm -f crates/bench/BENCH_hotpath.json
  HARNESS_BENCH_FAST=1 cargo bench --offline -p cagc-bench --bench hotpath
  mv crates/bench/BENCH_hotpath.json "$TRACE_TMP/bench/"
  if cargo run --release --offline -p cagc-bench --bin bench_check -- \
       results/BENCH_hotpath.json "$TRACE_TMP/bench/BENCH_hotpath.json" \
       --speedup-ref results/BENCH_trace.json \
       --speedup-ref-name gc_cycle_replay_tracing/disabled \
       --speedup-bench hotpath/gc_heavy_replay --speedup-min 2.5 \
     && cargo run --release --offline -p cagc-bench --bin bench_check -- \
       results/BENCH_hotpath.json "$TRACE_TMP/bench/BENCH_hotpath.json" \
       --speedup-ref results/BENCH_hotpath_seed.json \
       --speedup-ref-name hotpath/gc_heavy_replay_1gb \
       --speedup-bench hotpath/gc_heavy_replay_1gb --speedup-min 5.0; then
    perf_ok=1
    break
  fi
done
if [ "$perf_ok" -ne 1 ]; then
  echo "FAIL: hotpath bench regressed beyond tolerance in all 3 attempts (docs/PERFORMANCE.md)"
  exit 1
fi

echo "verify: OK"
