#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the workspace has zero
# external crate dependencies — see README "Hermetic build").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== clippy (offline, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== docs (offline, no deps) =="
cargo doc --no-deps --offline

echo "== smoke: regenerate Fig. 9 (tracing disabled => byte-identical CSV) =="
cargo run --release --offline -p cagc-bench --bin repro -- fig9
git diff --exit-code -- results/fig9.csv \
  || { echo "FAIL: untraced repro must regenerate results/fig9.csv byte-identical"; exit 1; }

echo "== smoke: deterministic trace (Chrome JSON, parser round-trip, seed-stable) =="
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -p cagc-bench --bin repro -- \
  --smoke --trace "$TRACE_TMP/a.json" | grep "parser round-trip OK"
cargo run --release --offline -p cagc-bench --bin repro -- \
  --smoke --trace "$TRACE_TMP/b.json" > /dev/null
cmp "$TRACE_TMP/a.json" "$TRACE_TMP/b.json" \
  || { echo "FAIL: same-seed Chrome traces must be byte-identical"; exit 1; }
cmp "$TRACE_TMP/a.jsonl" "$TRACE_TMP/b.jsonl" \
  || { echo "FAIL: same-seed JSONL logs must be byte-identical"; exit 1; }

echo "== smoke: trim sensitivity (asserts honoring < ignoring) =="
cargo run --release --offline --example trim_sensitivity -- --smoke

echo "== smoke: fault sweep + power-loss recovery =="
cargo run --release --offline --example fault_sweep -- --smoke

echo "== smoke: queue-depth sweep (QD=1 equivalence + byte-determinism) =="
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/qd1" sweep-qd | grep "QD=1 equivalence OK"
cargo run --release --offline -p cagc-bench --bin repro -- \
  --scale quick --out "$TRACE_TMP/qd2" sweep-qd > /dev/null
cmp "$TRACE_TMP/qd1/sweep_qd.csv" "$TRACE_TMP/qd2/sweep_qd.csv" \
  || { echo "FAIL: same-seed sweep_qd.csv must be byte-identical"; exit 1; }
cmp "$TRACE_TMP/qd1/gc_preempt_cdf.csv" "$TRACE_TMP/qd2/gc_preempt_cdf.csv" \
  || { echo "FAIL: same-seed gc_preempt_cdf.csv must be byte-identical"; exit 1; }

echo "verify: OK"
