//! Replay a Mail-server-like deduplicating workload (Table II: 69.8 %
//! writes, 89.3 % duplicate content, 14.8 KB requests) against all three
//! schemes on an aged ULL SSD, and print the paper's headline comparison.
//!
//! ```bash
//! cargo run --release --example mail_server
//! ```

use cagc::flash::UllConfig;
use cagc::metrics::reduction_pct;
use cagc::prelude::*;

fn main() {
    let flash = UllConfig::scaled_gb(1);
    let footprint = (flash.logical_pages() as f64 * 0.95) as u64;
    let trace = FiuWorkload::Mail.synth_config(footprint, 120_000, 7).generate();

    println!("== Mail workload on a {}-block ULL SSD ==", flash.geometry().total_blocks());
    let profile = TraceProfile::of(&trace);
    println!(
        "trace: {} requests | write ratio {:.1}% | dedup ratio {:.1}% | mean {:.1}KB\n",
        trace.len(),
        profile.write_ratio * 100.0,
        profile.dedup_ratio * 100.0,
        profile.mean_req_kb
    );

    // The three schemes run in parallel — each simulation is deterministic.
    let cells: Vec<(SsdConfig, &Trace)> = Scheme::ALL
        .iter()
        .map(|&s| (SsdConfig::paper(flash, s), &trace))
        .collect();
    let reports = run_cells(&cells, 0);

    for r in &reports {
        println!("{}\n", r.render());
    }

    let base = reports.iter().find(|r| r.scheme == "Baseline").expect("baseline ran");
    let cagc = reports.iter().find(|r| r.scheme == "CAGC").expect("cagc ran");
    println!("== CAGC vs Baseline (paper, Mail: erases -86.6%, migrations -85.9%) ==");
    println!(
        "blocks erased : -{:.1}%",
        reduction_pct(base.gc.blocks_erased as f64, cagc.gc.blocks_erased as f64)
    );
    println!(
        "pages migrated: -{:.1}%",
        reduction_pct(base.gc.pages_migrated as f64, cagc.gc.pages_migrated as f64)
    );
    println!(
        "mean response : -{:.1}%",
        reduction_pct(base.all.mean_ns, cagc.all.mean_ns)
    );
    println!(
        "p99 response  : -{:.1}%",
        reduction_pct(base.all.p99_ns as f64, cagc.all.p99_ns as f64)
    );
}
