//! Victim-selection policy study (the paper's Sec. IV-C sensitivity
//! analysis): run Baseline and CAGC under Random, Greedy and Cost-Benefit
//! victim selection on a Web-vm-like workload and compare.
//!
//! ```bash
//! cargo run --release --example gc_policy_study
//! ```

use cagc::flash::UllConfig;
use cagc::metrics::{reduction_pct, Table};
use cagc::prelude::*;

fn main() {
    let flash = UllConfig::scaled_gb(1);
    let footprint = (flash.logical_pages() as f64 * 0.95) as u64;
    let trace = FiuWorkload::WebVm.synth_config(footprint, 60_000, 11).generate();

    println!("== GC policy sensitivity on Web-vm (paper Fig. 13) ==\n");

    let mut cells = Vec::new();
    for policy in VictimKind::EXTENDED {
        for scheme in [Scheme::Baseline, Scheme::Cagc] {
            let mut cfg = SsdConfig::paper(flash, scheme);
            cfg.victim = policy;
            cells.push((cfg, &trace));
        }
    }
    let reports = run_cells(&cells, 0);

    let mut t = Table::new(vec![
        "Policy", "Scheme", "Blocks erased", "Pages migrated", "Mean resp", "Wear (max-min)",
    ]);
    for r in &reports {
        t.row(vec![
            r.victim.clone(),
            r.scheme.clone(),
            r.gc.blocks_erased.to_string(),
            r.gc.pages_migrated.to_string(),
            format!("{:.1}us", r.all.mean_ns / 1000.0),
            format!("{}", r.wear.1 - r.wear.0),
        ]);
    }
    println!("{}", t.render());

    println!("CAGC's reduction vs Baseline under each policy:");
    for (i, policy) in VictimKind::EXTENDED.into_iter().enumerate() {
        let base = &reports[i * 2];
        let cagc = &reports[i * 2 + 1];
        println!(
            "  {:<13} erases -{:.1}%  migrations -{:.1}%  response -{:.1}%",
            policy.name(),
            reduction_pct(base.gc.blocks_erased as f64, cagc.gc.blocks_erased as f64),
            reduction_pct(base.gc.pages_migrated as f64, cagc.gc.pages_migrated as f64),
            reduction_pct(base.all.mean_ns, cagc.all.mean_ns),
        );
    }
    println!(
        "\nThe paper's point: CAGC is orthogonal to the victim policy — the\n\
         improvement holds under every selection algorithm (the paper evaluates\n\
         the first three; FIFO and D-Choices are extensions of this reproduction)."
    );
}
