//! Quickstart: the paper's Fig. 8 scenario, end to end.
//!
//! Four files are written sharing content chunks (Fig. 1: File1=ABCD,
//! File2=EBF, File3=DAB, File4=BG — chunk B is in all four). We then force
//! a GC pass over the block holding them and compare what a traditional
//! (Baseline) FTL does with what CAGC does:
//!
//! * Baseline migrates all 12 valid pages (12 programs);
//! * CAGC fingerprints them during migration and writes each unique chunk
//!   once: **7 programs, 5 redundant writes eliminated** — the exact
//!   counts of Fig. 8(b).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cagc::prelude::*;

/// Stage the scenario on one SSD and force GC over the file block.
fn run(scheme: Scheme) -> RunReport {
    let mut ssd = Ssd::new(SsdConfig::tiny(scheme));
    let mut t = 0u64;
    let mut tick = || {
        t += 1_000_000;
        t
    };

    // The four files: 12 chunk pages at LPNs 0..12 (contents 1..=7 are
    // A..=G). They land in flash block 0, pages 0..12.
    let files: [&[u64]; 4] = [&[1, 2, 3, 4], &[5, 2, 6], &[4, 1, 2], &[2, 7]];
    let mut lpn = 0;
    for chunks in files {
        let contents = chunks.iter().map(|&c| ContentId(c)).collect();
        ssd.process(&Request::write(tick(), lpn, contents));
        lpn += chunks.len() as u64;
    }

    // Fill the rest of block 0 with scratch (LPNs 100..120), then
    // overwrite that scratch once: block 0 now holds 12 valid file pages
    // and 20 invalid pages — and is the only block with anything to
    // reclaim, so the greedy policy must pick it when GC triggers.
    for i in 0..20 {
        ssd.process(&Request::write(tick(), 100 + i, vec![ContentId(1_000 + i)]));
    }
    for i in 0..20 {
        ssd.process(&Request::write(tick(), 100 + i, vec![ContentId(2_000 + i)]));
    }

    // Collect the block: with greedy selection it is the only candidate.
    ssd.force_gc(tick());
    assert!(ssd.gc_stats().blocks_erased > 0, "GC must have reclaimed the file block");

    // Now delete files 2 and 4 (LPNs 4..7 and 10..12), per the scenario.
    ssd.process(&Request::trim(tick(), 4, 3));
    ssd.process(&Request::trim(tick(), 10, 2));

    ssd.audit().expect("consistency audit");
    ssd.report("fig8")
}

fn main() {
    println!("== CAGC quickstart: Fig. 8 — four files, shared chunks, one GC pass ==\n");
    println!("files: 12 chunk writes over 7 unique contents (B shared by all four files)\n");

    let base = run(Scheme::Baseline);
    let cagc = run(Scheme::Cagc);

    for r in [&base, &cagc] {
        println!(
            "{:<9} GC of the file block: {:>2} pages migrated, {:>2} redundant writes eliminated",
            r.scheme, r.gc.pages_migrated, r.gc.dedup_hits
        );
    }

    assert_eq!(base.gc.pages_migrated, 12, "baseline must copy every valid page");
    assert_eq!(cagc.gc.pages_migrated, 7, "CAGC writes each unique chunk once (Fig. 8b)");
    assert_eq!(cagc.gc.dedup_hits, 5, "5 of 12 pages were duplicates (B x3, A, D)");

    println!(
        "\nExactly Fig. 8: the traditional GC performs 12 page writes where CAGC\n\
         performs 7, because migration-time fingerprinting absorbs the duplicate\n\
         copies of chunks A, B and D into single stored pages with reference counts."
    );
}
