//! The paper's motivation experiment (Fig. 2): what inline deduplication
//! costs on an ultra-low-latency SSD that is *not* under GC pressure.
//!
//! On a fresh device, every written page pays the 14 µs fingerprint
//! latency plus index lookup before its 16 µs program — on Z-NAND-class
//! flash that is comparable to the flash operation itself, so the write
//! path nearly doubles. The same experiment on a conventional NVMe SSD
//! (500 µs programs) shows why nobody noticed before: there the hash is
//! noise.
//!
//! ```bash
//! cargo run --release --example inline_dedup_cost
//! ```

use cagc::flash::{Timing, UllConfig};
use cagc::prelude::*;

fn run_pair(flash: UllConfig, trace: &Trace) -> (RunReport, RunReport) {
    let cells = vec![
        (SsdConfig::paper(flash, Scheme::Baseline), trace),
        (SsdConfig::paper(flash, Scheme::InlineDedup), trace),
    ];
    let mut reports = run_cells(&cells, 0);
    let inline = reports.pop().expect("inline report");
    let base = reports.pop().expect("baseline report");
    (base, inline)
}

fn main() {
    let ull = UllConfig::scaled_gb(1);
    // Small footprint, bounded volume: the device never reaches the GC
    // watermark, isolating the write-path cost (the Fig. 2 regime).
    let footprint = (ull.logical_pages() as f64 * 0.15) as u64;

    println!("== Inline dedup cost on a fresh device (paper Fig. 2) ==\n");
    println!("workload  flash      baseline   inline     penalty");
    for w in FiuWorkload::ALL {
        let requests = (ull.geometry().total_pages() / 4) as f64
            / (w.write_ratio() * w.mean_req_pages());
        let mut cfg = w.synth_config(footprint, requests as usize, 3);
        cfg.prefill_fraction = 0.5;
        let trace = cfg.generate();

        // Ultra-low-latency flash: the paper's subject.
        let (base, inline) = run_pair(ull, &trace);
        assert_eq!(base.gc.invocations, 0, "regime must be GC-free");
        println!(
            "{:<9} {:<10} {:>9.1}us  {:>9.1}us  {:+.1}%",
            w.name(),
            "Z-NAND",
            base.all.mean_ns / 1000.0,
            inline.all.mean_ns / 1000.0,
            (inline.all.mean_ns / base.all.mean_ns - 1.0) * 100.0
        );

        // Conventional NVMe flash (500us programs): the same experiment,
        // with all pacing slowed ~40x to match the medium — a slow drive
        // serves a proportionally slower request stream; what matters is
        // the hash cost *relative to the flash program*, not absolute load.
        cfg.mean_interarrival_ns *= 40;
        cfg.burst_gap_ns *= 40;
        cfg.prefill_gap_ns_per_page *= 40;
        let slow_trace = cfg.generate();
        let mut nvme = ull;
        nvme.timing = Timing::conventional_nvme();
        let (base_n, inline_n) = run_pair(nvme, &slow_trace);
        println!(
            "{:<9} {:<10} {:>9.1}us  {:>9.1}us  {:+.1}%",
            "",
            "conv-NVMe",
            base_n.all.mean_ns / 1000.0,
            inline_n.all.mean_ns / 1000.0,
            (inline_n.all.mean_ns / base_n.all.mean_ns - 1.0) * 100.0
        );
    }
    println!(
        "\npaper: on Z-NAND, inline dedup raised response times up to 71.9% (avg 43.1%).\n\
         Note the inversion: on conventional flash inline dedup *helps* (the 14us\n\
         hash is noise next to a 500us program, and every dedup hit skips one),\n\
         while on ultra-low-latency flash the same hash dominates the write path.\n\
         That inversion is why dedup-in-GC (CAGC) only became necessary with ULL media."
    );
}
