//! Replay a trace from a file — both the native text format and the FIU
//! SyLab layout the paper's traces use.
//!
//! With no arguments, a demonstration trace is generated, written to a
//! temporary file, parsed back and replayed. Pass a path (and optionally
//! `--fiu`) to replay your own trace:
//!
//! ```bash
//! cargo run --release --example trace_file_replay              # demo
//! cargo run --release --example trace_file_replay mytrace.txt  # native format
//! cargo run --release --example trace_file_replay fiu.blk --fiu
//! ```

use cagc::prelude::*;
use cagc::workloads::{parse_fiu, parse_native, write_native};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flash = UllConfig::tiny_for_tests();
    let logical = flash.geometry().total_pages() * 93 / 100;

    let trace = match args.first().map(String::as_str) {
        None => {
            // Demo: synthesize, serialize, parse back — exercising the
            // full round trip a user's own traces would take.
            let synth = SynthConfig {
                name: "demo".into(),
                requests: 5_000,
                logical_pages: logical / 2,
                dedup_ratio: 0.6,
                seed: 99,
                ..Default::default()
            }
            .generate();
            let path = std::env::temp_dir().join("cagc_demo_trace.txt");
            std::fs::write(&path, write_native(&synth)).expect("write demo trace");
            println!("demo trace written to {}", path.display());
            let text = std::fs::read_to_string(&path).expect("read demo trace");
            parse_native("demo", logical, &text).expect("parse demo trace")
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            if args.iter().any(|a| a == "--fiu") {
                parse_fiu(path, logical, &text).unwrap_or_else(|e| panic!("parse error: {e}"))
            } else {
                parse_native(path, logical, &text)
                    .unwrap_or_else(|e| panic!("parse error: {e}"))
            }
        }
    };

    let profile = TraceProfile::of(&trace);
    println!(
        "\ntrace `{}`: {} requests ({} reads / {} writes / {} trims)\n\
         write ratio {:.1}% | dedup ratio {:.1}% | mean request {:.1}KB\n",
        trace.name,
        trace.len(),
        profile.reads,
        profile.writes,
        profile.trims,
        profile.write_ratio * 100.0,
        profile.dedup_ratio * 100.0,
        profile.mean_req_kb,
    );

    for scheme in Scheme::ALL {
        let mut ssd = Ssd::new(SsdConfig::paper(flash, scheme));
        let report = ssd.replay(&trace);
        println!(
            "{:<14} mean {:>8.1}us  p99 {:>9.1}us  erases {:>5}  migrated {:>6}  WAF {:.3}",
            report.scheme,
            report.all.mean_ns / 1000.0,
            report.all.p99_ns as f64 / 1000.0,
            report.gc.blocks_erased,
            report.gc.pages_migrated,
            report.waf(),
        );
    }
}
