//! Latency over time: watch GC interference appear as spikes, and CAGC
//! flatten them.
//!
//! Replays a Mail-like workload under Baseline and CAGC while recording a
//! windowed latency time series, then prints log-scaled sparklines: the
//! dense spike train in the Baseline row is watermark-triggered GC; the
//! sparser CAGC row is the same device after dedup-in-GC has shrunk the
//! live data set.
//!
//! ```bash
//! cargo run --release --example latency_timeline
//! cargo run --release --example latency_timeline -- --qd 8
//! cargo run --release --example latency_timeline -- --trace cagc.trace.json
//! ```
//!
//! With `--qd <n>` the replay goes through the multi-queue host interface
//! (`cagc-host`) closed-loop at that depth instead of the synchronous
//! request-at-a-time path: per-request completion latency is then
//! *host-observed* (submission to completion interrupt, queueing
//! included) and the slowest individual requests are listed.
//!
//! With `--trace <path>` the CAGC pass records every span (host ops, GC
//! phases, per-die busy intervals) and writes a Chrome trace-event JSON
//! openable in Perfetto — the timeline behind the sparkline. Add
//! `--trace-sample <n>` to thin host-op spans on big runs. See
//! docs/OBSERVABILITY.md.

use cagc::metrics::TimeSeries;
use cagc::prelude::*;
use cagc::sim::time::ms;
use cagc::workloads::scale_rate;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--trace needs a path")));
    let trace_sample: u64 = args
        .iter()
        .position(|a| a == "--trace-sample")
        .map(|i| args.get(i + 1).and_then(|s| s.parse().ok()).expect("--trace-sample needs a number"))
        .unwrap_or(1);
    let qd: Option<u32> = args
        .iter()
        .position(|a| a == "--qd")
        .map(|i| args.get(i + 1).and_then(|s| s.parse().ok()).expect("--qd needs a number"));

    let flash = UllConfig::tiny_for_tests();
    let footprint = (flash.logical_pages() as f64 * 0.95) as u64;
    // The tiny 4-die device needs a gentler arrival rate than the default
    // preset (sized for 32 dies): stretch time 3x with the trace mixer.
    let trace = scale_rate(
        &FiuWorkload::Mail.synth_config(footprint, 30_000, 5).generate(),
        3.0,
    );
    let span = trace.requests.last().map(|r| r.at_ns).unwrap_or(0);
    println!(
        "Mail-like trace: {} requests over {:.1}s of simulated time\n",
        trace.len(),
        span as f64 / 1e9
    );

    for scheme in [Scheme::Baseline, Scheme::Cagc] {
        let mut ssd = Ssd::new(SsdConfig::tiny(scheme));
        if trace_out.is_some() && scheme == Scheme::Cagc {
            ssd.enable_tracing(TraceConfig { sample: trace_sample, ..TraceConfig::default() });
        }
        let mut series = TimeSeries::new(ms(50));
        let (report, host_line) = if let Some(depth) = qd {
            // Closed-loop through the multi-queue host interface:
            // per-request latency is host-observed (queueing included).
            let mut host = HostInterface::new(ssd, HostConfig::nvme(1, depth));
            let (hr, cmds) = host.replay_closed_loop_detailed(&trace);
            for c in &cmds {
                series.record(c.wanted_ns, c.latency_ns());
            }
            let mut slowest: Vec<(usize, &cagc::host::CmdLatency)> =
                cmds.iter().enumerate().collect();
            slowest.sort_by_key(|(_, c)| std::cmp::Reverse(c.latency_ns()));
            let mut lines = format!(
                "host qd={depth}: p95 {:>8.1}us  p99.9 {:>8.1}us  irqs {}  slowest requests:\n",
                hr.all.p95_ns as f64 / 1000.0,
                hr.all.p999_ns as f64 / 1000.0,
                hr.irqs
            );
            for (i, c) in slowest.iter().take(3) {
                lines.push_str(&format!(
                    "    req #{i}: {:>8.1}us (submit {:.3}ms, reap {:.3}ms)\n",
                    c.latency_ns() as f64 / 1000.0,
                    c.wanted_ns as f64 / 1e6,
                    c.reaped_ns as f64 / 1e6,
                ));
            }
            ssd = host.into_ssd();
            (hr.device.clone(), Some(lines))
        } else {
            for req in &trace.requests {
                let done = ssd.process(req);
                series.record(req.at_ns, done - req.at_ns);
            }
            (ssd.report(&trace.name), None)
        };
        println!(
            "{:<9} |{}|",
            report.scheme,
            series.sparkline(100)
        );
        println!(
            "{:<9}  mean {:>7.1}us  p99 {:>8.1}us  GC rounds {:>5}  erases {:>5}\n",
            "",
            report.all.mean_ns / 1000.0,
            report.all.p99_ns as f64 / 1000.0,
            report.gc.invocations,
            report.gc.blocks_erased
        );
        if let Some(lines) = host_line {
            println!("{lines}");
        }
        if let (Some(path), Scheme::Cagc) = (&trace_out, scheme) {
            std::fs::write(path, ssd.chrome_trace().render()).expect("write Chrome trace");
            println!(
                "trace: {} events ({} dropped) -> {}\n",
                ssd.tracer().events().len(),
                ssd.tracer().dropped_events(),
                path.display()
            );
        }
    }
    println!("(each column is ~1% of the run; darker = higher mean latency, log scale)");
}
