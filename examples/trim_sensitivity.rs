//! Trim sensitivity study: how much write amplification and erase traffic
//! do trim (deallocate) hints save, as a function of trim intensity?
//!
//! A Web-vm-like workload is trim-intensified with `inject_trims` at
//! several fractions; each point is replayed twice on the same device —
//! honoring the hints (`honor_trim = true`, the default) and ignoring
//! them. The gap is the Frankie-style dynamic-overprovisioning effect:
//! every honored trim turns a would-be valid page into free-to-reclaim
//! garbage before GC ever sees it. See docs/TRIM.md for the data path.
//!
//! ```bash
//! cargo run --release --example trim_sensitivity            # full curve
//! cargo run --release --example trim_sensitivity -- --smoke # CI-sized
//! ```

use cagc::flash::UllConfig;
use cagc::metrics::{reduction_pct, Table};
use cagc::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (flash, requests, fractions): (UllConfig, usize, &[f64]) = if smoke {
        (UllConfig::tiny_for_tests(), 8_000, &[0.0, 0.2])
    } else {
        (UllConfig::scaled_gb(1), 60_000, &[0.0, 0.05, 0.10, 0.20, 0.35])
    };
    let footprint = (flash.logical_pages() as f64 * 0.90) as u64;
    let base = FiuWorkload::WebVm.synth_config(footprint, requests, 11).generate();

    println!("== Trim sensitivity: WA and erases, honoring vs ignoring trims ==\n");

    let mut t = Table::new(vec![
        "Trim frac", "Scheme", "Honored", "Blocks erased", "Pages migrated",
        "Trim-reclaimed", "WAF",
    ]);
    let mut gaps = Vec::new();
    for &frac in fractions {
        let trace = inject_trims(&base, frac, 6, 11);
        let mut cells = Vec::new();
        for scheme in [Scheme::Baseline, Scheme::Cagc] {
            for honor in [true, false] {
                let mut cfg = SsdConfig::paper(flash, scheme);
                cfg.honor_trim = honor;
                cells.push((cfg, &trace));
            }
        }
        let reports = run_cells(&cells, 0);
        for (i, r) in reports.iter().enumerate() {
            let honor = i % 2 == 0;
            t.row(vec![
                format!("{:.0}%", frac * 100.0),
                r.scheme.clone(),
                if honor { "yes" } else { "no" }.to_string(),
                r.gc.blocks_erased.to_string(),
                r.gc.pages_migrated.to_string(),
                r.gc.trim_reclaimed_pages.to_string(),
                format!("{:.3}", r.waf()),
            ]);
        }
        // Baseline honoring (index 0) vs baseline blind (index 1).
        gaps.push((frac, reports[0].clone(), reports[1].clone()));
    }
    println!("{}", t.render());

    println!("Honoring trims vs ignoring them (Baseline):");
    for (frac, honoring, blind) in &gaps {
        println!(
            "  trim {:>3.0}%  erases -{:.1}%  migrations -{:.1}%  WAF {:.3} -> {:.3}",
            frac * 100.0,
            reduction_pct(blind.gc.blocks_erased as f64, honoring.gc.blocks_erased as f64),
            reduction_pct(blind.gc.pages_migrated as f64, honoring.gc.pages_migrated as f64),
            blind.waf(),
            honoring.waf(),
        );
    }
    println!(
        "\nThe trim stream behaves as dynamic overprovisioning (Frankie et al.):\n\
         deallocated pages are reclaimed for free at their block's erase instead\n\
         of being migrated, so erase and migration traffic fall — and the saving\n\
         grows with trim intensity. (The gap at 0% injected comes from the\n\
         workload's native trim stream — Web-vm-like traces already carry\n\
         a small deallocate ratio.)"
    );
    if smoke {
        // CI gate: the directional claim must hold at the smoke point too.
        let (_, honoring, blind) = gaps.last().expect("smoke sweeps a nonzero fraction");
        assert!(
            honoring.gc.pages_migrated < blind.gc.pages_migrated
                && honoring.gc.blocks_erased < blind.gc.blocks_erased,
            "honoring trims must reduce migrations and erases"
        );
        println!("\nsmoke: OK (honoring < ignoring on both axes)");
    }
}
