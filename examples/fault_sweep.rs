//! Fault sweep: what does surviving NAND faults cost, and what does a
//! power loss actually lose?
//!
//! Two parts:
//!
//! 1. **Fault-rate sweep** — a Web-vm-like workload replayed under rising
//!    program/erase/read-ECC failure rates. Every fault is absorbed by FTL
//!    policy (program retry on a fresh block, bad-block retirement, ECC
//!    re-reads with a heroic-decode fallback), so the interesting output
//!    is the cost: retry programs, retired capacity, retry latency.
//! 2. **Crash + recovery demo** — the same workload torn by a power loss
//!    mid-run (inside GC churn), then brought back with [`Ssd::recover`]:
//!    the mapping and fingerprint refcounts are rebuilt from per-page OOB
//!    metadata and the mapping-delta journal, and the run continues.
//!
//! See docs/FAULTS.md for the fault model and the recovery pass.
//!
//! ```bash
//! cargo run --release --example fault_sweep            # full sweep
//! cargo run --release --example fault_sweep -- --smoke # CI-sized
//! cargo run --release --example fault_sweep -- --smoke --trace faults.trace.json
//! ```
//!
//! With `--trace <path>` the crash-and-recover run (part 2) records every
//! span and writes a Chrome trace-event JSON for Perfetto. The traced run
//! additionally injects the sweep's top program/ECC fault rate, so the
//! timeline shows retry instants and the recovery span alongside the
//! power-loss point — see docs/OBSERVABILITY.md for the taxonomy.

use cagc::metrics::Table;
use cagc::prelude::*;
use std::path::PathBuf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let trace_out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--trace needs a path")));
    let (flash, requests, rates): (UllConfig, usize, &[f64]) = if smoke {
        (UllConfig::tiny_for_tests(), 8_000, &[0.0, 5e-3])
    } else {
        (UllConfig::scaled_gb(1), 60_000, &[0.0, 1e-4, 1e-3, 5e-3, 2e-2])
    };
    let footprint = (flash.logical_pages() as f64 * 0.90) as u64;
    let trace = FiuWorkload::WebVm.synth_config(footprint, requests, 11).generate();

    println!("== Fault sensitivity: absorbing NAND faults, and what it costs ==\n");

    let mut t = Table::new(vec![
        "Fault rate", "Scheme", "Prog fails", "Erase fails", "ECC errs",
        "Retired", "Forced", "WAF", "Mean us", "P99 us",
    ]);
    for &rate in rates {
        let mut cells = Vec::new();
        for scheme in [Scheme::Baseline, Scheme::Cagc] {
            let mut cfg = SsdConfig::paper(flash, scheme);
            cfg.faults = FaultConfig {
                program_fail_prob: rate,
                erase_fail_prob: rate / 10.0,
                read_ecc_prob: rate,
                seed: 11,
                ..FaultConfig::none()
            };
            cells.push((cfg, &trace));
        }
        for r in run_cells(&cells, 0) {
            let f = &r.faults;
            t.row(vec![
                format!("{rate}"),
                r.scheme.clone(),
                f.program_failures.to_string(),
                f.erase_failures.to_string(),
                f.read_ecc_errors.to_string(),
                f.blocks_retired.to_string(),
                f.forced_programs.to_string(),
                format!("{:.3}", r.waf()),
                format!("{:.1}", r.all.mean_ns / 1_000.0),
                format!("{:.1}", r.all.p99_ns as f64 / 1_000.0),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Fault handling is pay-as-you-go: the zero row matches a fault-free build\n\
         bit for bit; rising rates cost retries and retired blocks, never data.\n"
    );

    // --- Part 2: tear the device mid-run, recover, keep going. ---
    println!("== Power loss inside GC, then recovery ==\n");
    let mut cfg = SsdConfig::paper(flash, Scheme::Cagc);
    // Crash deep enough into the run that GC (and its dedup absorption)
    // has been churning for a while: a ~90%-full device runs well over ten
    // durable ops per request once migration traffic dominates.
    let crash_op = requests as u64 * 10;
    cfg.faults = FaultConfig { crash_at_op: Some(crash_op), seed: 11, ..FaultConfig::none() };
    if trace_out.is_some() {
        // The traced run also injects the sweep's top fault rate so the
        // timeline carries retry instants, not just the crash + recovery.
        let top = rates.last().copied().unwrap_or(0.0);
        cfg.faults.program_fail_prob = top;
        cfg.faults.read_ecc_prob = top;
    }
    let mut ssd = Ssd::new(cfg);
    if trace_out.is_some() {
        ssd.enable_tracing(TraceConfig::default());
    }

    let mut torn_at = None;
    for (i, req) in trace.requests.iter().enumerate() {
        match ssd.process_checked(req) {
            Ok(_) => {}
            Err(FlashError::PowerLoss) => {
                torn_at = Some(i);
                break;
            }
            Err(e) => panic!("unexpected flash error: {e}"),
        }
    }
    let torn_at = torn_at.expect("crash point inside the run");
    println!(
        "power lost during request {torn_at}/{} (durable op {crash_op}); \
         {} requests acknowledged",
        trace.requests.len(),
        ssd.acknowledged_requests()
    );

    let rep = ssd.recover().expect("recovery from durable state");
    println!(
        "recovered: {} OOB pages scanned, {} journal entries, {} mappings, \
         {} fingerprints, {} duplicate copies merged, in {:.2} ms simulated",
        rep.pages_scanned,
        rep.journal_entries,
        rep.mappings_recovered,
        rep.fingerprints_rebuilt,
        rep.duplicate_copies_merged,
        rep.recovery_ns as f64 / 1e6
    );

    for req in &trace.requests[torn_at..] {
        ssd.process(req);
    }
    ssd.audit().expect("post-recovery consistency");
    let report = ssd.report(&trace.name);
    println!("\nrun completed after recovery; final report:\n{}", report.render());

    if let Some(path) = &trace_out {
        std::fs::write(path, ssd.chrome_trace().render()).expect("write Chrome trace");
        let names: Vec<&str> = ssd.tracer().events().iter().map(|e| e.name).collect();
        println!(
            "\ntrace: {} events ({} dropped), retries {}, recovery spans {} -> {}",
            ssd.tracer().events().len(),
            ssd.tracer().dropped_events(),
            names.iter().filter(|n| n.ends_with("_retry")).count(),
            names.iter().filter(|n| **n == "recover").count(),
            path.display()
        );
    }
}
