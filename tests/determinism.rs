//! Reproducibility: same seed ⇒ identical results, serial ⇒ parallel.

use cagc::prelude::*;

fn trace(seed: u64) -> Trace {
    let flash = UllConfig::tiny_for_tests();
    FiuWorkload::WebVm
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, 8_000, seed)
        .generate()
}

fn fingerprint_report(r: &RunReport) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.gc.blocks_erased,
        r.gc.pages_migrated,
        r.gc.dedup_hits,
        r.total_programs,
        r.all.count,
        r.all.max_ns,
        r.end_ns,
    )
}

#[test]
fn identical_seeds_give_bitwise_identical_runs() {
    for scheme in Scheme::EXTENDED {
        let a = run_cell(SsdConfig::tiny(scheme), &trace(42));
        let b = run_cell(SsdConfig::tiny(scheme), &trace(42));
        assert_eq!(fingerprint_report(&a), fingerprint_report(&b), "{}", scheme.name());
        assert_eq!(a.all.mean_ns.to_bits(), b.all.mean_ns.to_bits(), "{}", scheme.name());
        assert_eq!(a.cdf.points().len(), b.cdf.points().len());
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = run_cell(SsdConfig::tiny(Scheme::Cagc), &trace(1));
    let b = run_cell(SsdConfig::tiny(Scheme::Cagc), &trace(2));
    assert_ne!(fingerprint_report(&a), fingerprint_report(&b));
}

#[test]
fn parallel_grid_equals_serial_grid() {
    let t = trace(7);
    let cells: Vec<(SsdConfig, &Trace)> =
        Scheme::EXTENDED.iter().map(|&s| (SsdConfig::tiny(s), &t)).collect();
    let serial = run_cells(&cells, 1);
    let parallel = run_cells(&cells, 8);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(fingerprint_report(a), fingerprint_report(b), "{}", a.scheme);
        assert_eq!(a.all.mean_ns.to_bits(), b.all.mean_ns.to_bits());
    }
}

#[test]
fn random_victim_policy_is_seed_deterministic() {
    let t = trace(11);
    let mut cfg = SsdConfig::tiny(Scheme::Cagc);
    cfg.victim = VictimKind::Random;
    cfg.victim_seed = 1234;
    let a = run_cell(cfg.clone(), &t);
    let b = run_cell(cfg.clone(), &t);
    assert_eq!(fingerprint_report(&a), fingerprint_report(&b));
    // A different victim seed reshuffles GC decisions.
    cfg.victim_seed = 5678;
    let c = run_cell(cfg, &t);
    assert_ne!(fingerprint_report(&a), fingerprint_report(&c));
}

#[test]
fn trace_generation_is_deterministic_across_workloads() {
    for w in FiuWorkload::ALL {
        let a = w.synth_config(4_096, 2_000, 3).generate();
        let b = w.synth_config(4_096, 2_000, 3).generate();
        assert_eq!(a, b, "{}", w.name());
    }
}
