//! Validates the ContentId abstraction against real bytes.
//!
//! The simulator represents page contents as opaque 64-bit identities and
//! fingerprints them by hashing the id. These tests confirm that nothing
//! is lost by the abstraction: expanding ids to real 4 KiB payloads and
//! running the actual SHA-1 data path produces exactly the same duplicate
//! structure, so every dedup decision the simulator makes is the decision
//! a real-content FTL would make.

use cagc::dedup::{ContentId, Fingerprint, ParallelHasher};
use cagc::prelude::*;
use std::collections::HashMap;

#[test]
fn byte_level_fingerprints_induce_the_same_duplicate_structure() {
    // A duplicate-heavy trace: many requests share ContentIds.
    let trace = FiuWorkload::Mail.synth_config(2_000, 1_500, 13).generate();
    let contents: Vec<ContentId> =
        trace.requests.iter().flat_map(|r| r.contents.iter().copied()).collect();
    assert!(contents.len() > 1_000);

    // Real data path: expand every page to 4 KiB and hash the bytes with
    // the parallel hasher (the production-style path).
    let payloads: Vec<Vec<u8>> = contents.iter().map(|c| c.synth_bytes(4096)).collect();
    let byte_fps = ParallelHasher::auto().hash_pages(&payloads);

    // Simulator path: fingerprint of the content id.
    let id_fps: Vec<Fingerprint> =
        contents.iter().map(|&c| Fingerprint::of_content(c)).collect();

    // The two fingerprint streams must induce identical equality classes.
    let mut byte_class: HashMap<Fingerprint, usize> = HashMap::new();
    let mut id_class: HashMap<Fingerprint, usize> = HashMap::new();
    let mut byte_labels = Vec::new();
    let mut id_labels = Vec::new();
    for (bf, idf) in byte_fps.iter().zip(&id_fps) {
        let next = byte_class.len();
        byte_labels.push(*byte_class.entry(*bf).or_insert(next));
        let next = id_class.len();
        id_labels.push(*id_class.entry(*idf).or_insert(next));
    }
    assert_eq!(byte_labels, id_labels, "duplicate structure diverged");
    // And there really are duplicates to find (Mail is ~89% redundant).
    assert!(byte_class.len() * 2 < contents.len());
}

#[test]
fn simulator_dedup_hits_match_byte_level_ground_truth() {
    // Replay under Inline-Dedupe and independently count, from the raw
    // bytes, how many written pages were duplicates of an earlier page.
    let flash = UllConfig::tiny_for_tests();
    let trace = FiuWorkload::WebVm
        .synth_config((flash.logical_pages() as f64 * 0.3) as u64, 1_200, 17)
        .generate();

    let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::InlineDedup));
    let report = ssd.replay(&trace);

    // Ground truth on real bytes: a page is a duplicate if its byte-level
    // fingerprint was seen before (matching inline dedup's view, which
    // also counts re-writes of content whose stored copy is still live).
    // The simulator's "index hits" additionally count overwrites with
    // identical content and misses content whose copy died — so compare
    // the *unique stored page* count instead, which must be exact while
    // nothing has been released: first-run uniques == distinct fingerprints
    // seen, as long as every content stays referenced.
    let mut seen = std::collections::HashSet::new();
    let mut unique_pages = 0u64;
    for r in trace.requests.iter().filter(|r| r.kind == OpKind::Write) {
        for c in &r.contents {
            if seen.insert(Fingerprint::of_bytes(&c.synth_bytes(4096))) {
                unique_pages += 1;
            }
        }
    }
    // Inline programs once per first sighting; re-programs only occur after
    // a content's last reference dies, so programs >= unique and every
    // program registered a fingerprint insert.
    assert!(report.user_programs >= unique_pages);
    assert_eq!(report.user_programs, report.index.inserts);
    // With this footprint and volume, overwrite churn is mild: programs
    // should stay close to the byte-level unique count.
    assert!(
        report.user_programs <= unique_pages + unique_pages / 3,
        "programs {} far above byte-level uniques {}",
        report.user_programs,
        unique_pages
    );
}
