//! Determinism regression for the hermetic substrate: the pool's worker
//! count and repeated runs must never change a single byte of output.
//!
//! Each `RunReport` is rendered through `cagc_harness::json` (stable key
//! order, exact integer rendering, shortest-round-trip floats), so byte
//! equality of the serialized reports is equality of every counter,
//! quantile and distribution the paper's figures read.

use cagc::prelude::*;
use cagc_harness::ToJson;

/// A Fig. 9-style workload: the Mail trace shape (highest dedup ratio of
/// Table II) against the tiny ULL device, aged enough for GC to run.
fn fig9_style_trace(seed: u64) -> Trace {
    let flash = UllConfig::tiny_for_tests();
    FiuWorkload::Mail
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, 6_000, seed)
        .generate()
}

fn grid(trace: &Trace) -> Vec<(SsdConfig, &Trace)> {
    Scheme::EXTENDED.iter().map(|&s| (SsdConfig::tiny(s), trace)).collect()
}

fn render_all(reports: &[RunReport]) -> Vec<String> {
    reports.iter().map(|r| r.to_json().render()).collect()
}

#[test]
fn worker_count_never_changes_rendered_reports() {
    let trace = fig9_style_trace(9);
    let cells = grid(&trace);
    let serial = render_all(&run_cells(&cells, 1));
    for workers in [2, 3, 8, 0 /* 0 = available_parallelism */] {
        let parallel = render_all(&run_cells(&cells, workers));
        assert_eq!(
            serial, parallel,
            "workers={workers} produced different serialized reports"
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let trace_a = fig9_style_trace(9);
    let trace_b = fig9_style_trace(9);
    assert_eq!(trace_a, trace_b, "trace generation must be deterministic");
    let first = render_all(&run_cells(&grid(&trace_a), 4));
    let second = render_all(&run_cells(&grid(&trace_b), 4));
    assert_eq!(first, second);
    // And the reports actually contain figure-bearing content.
    for json in &first {
        assert!(json.contains("\"blocks_erased\":"));
        assert!(json.contains("\"p999_ns\":"));
    }
}
