//! Trace serialization: generated traces survive the text format intact,
//! and a replay of the parsed trace is indistinguishable from a replay of
//! the original.

use cagc::prelude::*;
use cagc::workloads::{parse_fiu, parse_native, write_native};

#[test]
fn native_round_trip_preserves_every_request() {
    let flash = UllConfig::tiny_for_tests();
    let trace = FiuWorkload::Mail
        .synth_config((flash.logical_pages() as f64 * 0.5) as u64, 4_000, 31)
        .generate();
    let text = write_native(&trace);
    let parsed = parse_native(&trace.name, trace.logical_pages, &text).expect("parse");
    // Timestamps are serialized at us granularity; everything else must be
    // exact. Compare the structural fields per request.
    assert_eq!(parsed.len(), trace.len());
    for (a, b) in trace.requests.iter().zip(&parsed.requests) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.lpn, b.lpn);
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.contents, b.contents);
        assert_eq!(a.at_ns / 1_000, b.at_ns / 1_000);
    }
}

#[test]
fn replaying_a_parsed_trace_matches_the_original_counters() {
    // Use whole-us timestamps so serialization is lossless.
    let flash = UllConfig::tiny_for_tests();
    let mut cfg = FiuWorkload::Homes
        .synth_config((flash.logical_pages() as f64 * 0.9) as u64, 6_000, 37);
    cfg.burst_gap_ns = 5_000;
    let trace = cfg.generate();
    let text = write_native(&trace);
    let parsed = parse_native(&trace.name, trace.logical_pages, &text).expect("parse");

    for scheme in Scheme::ALL {
        let original = run_cell(SsdConfig::tiny(scheme), &trace);
        let reparsed = run_cell(SsdConfig::tiny(scheme), &parsed);
        // Space-driven counters are timestamp-insensitive, so they must
        // match exactly even though timestamps rounded to us.
        assert_eq!(original.gc.blocks_erased, reparsed.gc.blocks_erased, "{}", scheme.name());
        assert_eq!(original.gc.pages_migrated, reparsed.gc.pages_migrated);
        assert_eq!(original.gc.dedup_hits, reparsed.gc.dedup_hits);
        assert_eq!(original.total_programs, reparsed.total_programs);
        assert_eq!(original.host_pages_written, reparsed.host_pages_written);
    }
}

#[test]
fn fiu_format_parses_and_replays() {
    // A hand-built FIU-style fragment: two processes writing overlapping
    // content (same md5 => duplicate pages).
    let mut text = String::new();
    for i in 0..200u64 {
        let ts = 1_000_000_000 + i * 2_000_000;
        let lba = (i % 50) * 8;
        let hash = if i % 3 == 0 { "aabbccdd" } else { "deadbeef" };
        let op = if i % 4 == 0 { "R" } else { "W" };
        text.push_str(&format!("{ts} 42 mailsrv {lba} 8 {op} 8 1 {hash}{}\n", i % 7));
    }
    let trace = parse_fiu("fiu-demo", 1_000, &text).expect("parse FIU text");
    assert_eq!(trace.len(), 200);
    let profile = TraceProfile::of(&trace);
    assert!(profile.dedup_ratio > 0.5, "repeated hashes must dedup");

    let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
    let report = ssd.replay(&trace);
    ssd.audit().expect("audit");
    assert_eq!(report.all.count, 200);
}

#[test]
fn parser_errors_carry_line_numbers() {
    let bad = "0 W 0 1 5\n100 W 0 nonsense 5\n";
    let err = parse_native("bad", 100, bad).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.to_string().contains("line 2"));
}
