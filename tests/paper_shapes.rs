//! The paper's qualitative results, asserted at integration-test scale.
//!
//! These are the small/fast versions of what `repro` measures at full
//! scale: who wins, in which direction, with which workload ordering. The
//! quantitative comparison against the published numbers lives in
//! EXPERIMENTS.md.

use cagc::prelude::*;

/// Aged-device trace at test scale for one FIU-like workload.
fn aged_trace(w: FiuWorkload, seed: u64) -> Trace {
    let flash = UllConfig::tiny_for_tests();
    let footprint = (flash.logical_pages() as f64 * 0.95) as u64;
    w.synth_config(footprint, 25_000, seed)
        .generate()
}

fn run(w: FiuWorkload, scheme: Scheme, seed: u64) -> RunReport {
    run_cell(SsdConfig::tiny(scheme), &aged_trace(w, seed))
}

#[test]
fn fig9_shape_cagc_erases_fewer_blocks_everywhere() {
    for w in FiuWorkload::ALL {
        let base = run(w, Scheme::Baseline, 5);
        let cagc = run(w, Scheme::Cagc, 5);
        assert!(
            cagc.gc.blocks_erased < base.gc.blocks_erased,
            "{}: CAGC {} vs baseline {}",
            w.name(),
            cagc.gc.blocks_erased,
            base.gc.blocks_erased
        );
    }
}

#[test]
fn fig9_shape_improvement_tracks_dedup_ratio() {
    // Mail (89% dedup) must improve much more than Homes (30%).
    let rel = |w| {
        let base = run(w, Scheme::Baseline, 9);
        let cagc = run(w, Scheme::Cagc, 9);
        cagc.gc.blocks_erased as f64 / base.gc.blocks_erased.max(1) as f64
    };
    let homes = rel(FiuWorkload::Homes);
    let mail = rel(FiuWorkload::Mail);
    assert!(
        mail < homes - 0.1,
        "Mail should improve far more than Homes (mail {mail:.2}, homes {homes:.2})"
    );
}

#[test]
fn fig10_shape_cagc_migrates_fewer_pages_everywhere() {
    for w in FiuWorkload::ALL {
        let base = run(w, Scheme::Baseline, 7);
        let cagc = run(w, Scheme::Cagc, 7);
        assert!(
            cagc.gc.pages_migrated < base.gc.pages_migrated,
            "{}: CAGC {} vs baseline {}",
            w.name(),
            cagc.gc.pages_migrated,
            base.gc.pages_migrated
        );
    }
}

#[test]
fn fig11_shape_cagc_beats_baseline_on_mail_response() {
    // Mail is the paper's headline (-70.1% during GC periods).
    let base = run(FiuWorkload::Mail, Scheme::Baseline, 11);
    let cagc = run(FiuWorkload::Mail, Scheme::Cagc, 11);
    assert!(
        cagc.gc_period_mean_ns() < base.gc_period_mean_ns() * 0.9,
        "CAGC GC-period mean {:.0}us vs baseline {:.0}us",
        cagc.gc_period_mean_ns() / 1000.0,
        base.gc_period_mean_ns() / 1000.0
    );
    assert!(cagc.all.mean_ns < base.all.mean_ns);
}

#[test]
fn fig12_shape_cagc_tail_dominates_baseline_on_mail() {
    let base = run(FiuWorkload::Mail, Scheme::Baseline, 13);
    let cagc = run(FiuWorkload::Mail, Scheme::Cagc, 13);
    // Stochastic dominance at the reported tail points.
    for q in [0.8, 0.95, 0.99] {
        assert!(
            cagc.cdf.value_at(q) <= base.cdf.value_at(q),
            "q={q}: CAGC {} > baseline {}",
            cagc.cdf.value_at(q),
            base.cdf.value_at(q)
        );
    }
}

#[test]
fn fig13_shape_cagc_wins_under_every_victim_policy() {
    let trace = aged_trace(FiuWorkload::WebVm, 17);
    for policy in VictimKind::ALL {
        let mut base_cfg = SsdConfig::tiny(Scheme::Baseline);
        base_cfg.victim = policy;
        let mut cagc_cfg = SsdConfig::tiny(Scheme::Cagc);
        cagc_cfg.victim = policy;
        let base = run_cell(base_cfg, &trace);
        let cagc = run_cell(cagc_cfg, &trace);
        assert!(
            cagc.gc.blocks_erased < base.gc.blocks_erased,
            "{:?}: erases {} vs {}",
            policy,
            cagc.gc.blocks_erased,
            base.gc.blocks_erased
        );
        assert!(
            cagc.gc.pages_migrated < base.gc.pages_migrated,
            "{:?}: migrations {} vs {}",
            policy,
            cagc.gc.pages_migrated,
            base.gc.pages_migrated
        );
    }
}

#[test]
fn fig6_shape_refcount1_dominates_invalidations() {
    // Measured on inline-dedupe so every page is tracked from first write.
    let report = run(FiuWorkload::Mail, Scheme::InlineDedup, 19);
    let b = report.invalidation_by_refcount;
    let total: u64 = b.iter().sum();
    assert!(total > 1_000, "not enough invalidations to measure");
    let ref1 = b[0] as f64 / total as f64;
    let gt3 = b[3] as f64 / total as f64;
    assert!(ref1 > 0.8, "refcount-1 share {:.2} below the paper's 80%", ref1);
    assert!(gt3 < 0.05, "refcount>3 share {:.3} should be tiny", gt3);
}

#[test]
fn cagc_reduces_write_amplification() {
    for w in [FiuWorkload::Mail, FiuWorkload::WebVm] {
        let base = run(w, Scheme::Baseline, 23);
        let cagc = run(w, Scheme::Cagc, 23);
        assert!(
            cagc.waf() < base.waf(),
            "{}: CAGC WAF {:.3} vs baseline {:.3}",
            w.name(),
            cagc.waf(),
            base.waf()
        );
    }
}

#[test]
fn cagc_improves_endurance_wear() {
    // Fewer erases means less wear: CAGC's max erase count is bounded by
    // the baseline's under the same trace.
    let base = run(FiuWorkload::Mail, Scheme::Baseline, 29);
    let cagc = run(FiuWorkload::Mail, Scheme::Cagc, 29);
    assert!(
        cagc.wear.2 < base.wear.2,
        "mean wear: CAGC {:.2} vs baseline {:.2}",
        cagc.wear.2,
        base.wear.2
    );
}
