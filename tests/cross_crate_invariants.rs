//! Cross-crate invariants: property tests that drive the full stack
//! (workload generator → SSD → FTL → flash → dedup) and check global
//! consistency after every run.

use cagc::prelude::*;
use cagc_harness::prop::*;

fn tiny_trace(
    seed: u64,
    requests: usize,
    dedup_ratio: f64,
    write_ratio: f64,
    footprint_frac: f64,
) -> Trace {
    let flash = UllConfig::tiny_for_tests();
    SynthConfig {
        name: "prop".into(),
        requests,
        logical_pages: ((flash.logical_pages() as f64) * footprint_frac).max(64.0) as u64,
        write_ratio,
        dedup_ratio,
        mean_req_pages: 2.5,
        max_req_pages: 8,
        mean_interarrival_ns: 300_000,
        seed,
        ..Default::default()
    }
    .generate()
}

harness_proptest! {
    #![config(cases = 12)]

    /// Whatever the workload shape, every scheme ends in a consistent
    /// state: forward/reverse maps agree, refcounts equal sharer counts,
    /// valid-page accounting balances, the fingerprint index audits clean.
    #[test]
    fn all_schemes_stay_consistent(
        seed in 0u64..1_000,
        dedup in 0.0f64..0.95,
        wr in 0.3f64..0.95,
        fp in 0.3f64..0.9,
    ) {
        let trace = tiny_trace(seed, 3_000, dedup, wr, fp);
        for scheme in Scheme::EXTENDED {
            let mut ssd = Ssd::new(SsdConfig::tiny(scheme));
            let report = ssd.replay(&trace);
            ssd.audit().map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", scheme.name()))
            })?;
            // Conservation: every flash program is either a user program
            // or a GC migration.
            prop_assert_eq!(
                report.total_programs,
                report.user_programs + report.gc.pages_migrated,
                "{} program accounting", scheme.name()
            );
            // Latency sanity: nothing completes before it arrives, and the
            // fastest possible request is a 1us controller miss.
            prop_assert!(report.all.count == trace.len() as u64);
            if report.all.count > 0 {
                prop_assert!(report.all.mean_ns >= 1_000.0 - 1e-9);
                prop_assert!(report.all.max_ns >= report.all.p999_ns);
            }
        }
    }

    /// Dedup never loses data: after any run, reading every mapped LPN hits
    /// a valid physical page (checked inside audit), and the number of
    /// unique stored pages never exceeds the number of unique contents.
    #[test]
    fn dedup_respects_content_bounds(seed in 0u64..1_000, dedup in 0.3f64..0.95) {
        let trace = tiny_trace(seed, 3_000, dedup, 0.8, 0.5);
        let profile = TraceProfile::of(&trace);
        let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::InlineDedup));
        let report = ssd.replay(&trace);
        ssd.audit().map_err(TestCaseError::fail)?;
        // Every inline user program registers exactly one new fingerprint
        // (a content is re-programmed only after its previous copy's last
        // reference died and the entry was removed).
        prop_assert_eq!(
            report.user_programs, report.index.inserts,
            "every unique program must insert a fingerprint"
        );
        // And the number of *live* unique pages can never exceed the
        // number of distinct contents in the trace.
        prop_assert!(
            report.user_programs <= profile.written_pages,
            "programs cannot exceed written pages"
        );
        prop_assert!(
            report.index.hits + report.index.inserts <= report.index.lookups,
            "index accounting"
        );
    }

    /// GC accounting: blocks erased equals device-level erase count, and
    /// each erase reclaims at least one page (no busywork erases of
    /// fully-valid blocks).
    #[test]
    fn gc_accounting_balances(seed in 0u64..1_000) {
        let trace = tiny_trace(seed, 6_000, 0.5, 0.85, 0.85);
        for scheme in Scheme::EXTENDED {
            let report = run_cell(SsdConfig::tiny(scheme), &trace);
            prop_assert_eq!(report.total_erases, report.gc.blocks_erased);
            if report.gc.blocks_erased > 0 {
                let pages_per_block = 32u64; // tiny_for_tests
                let reclaimable = report.gc.blocks_erased * pages_per_block;
                prop_assert!(
                    report.gc.pages_migrated < reclaimable,
                    "{}: migrated {} of {} reclaimed pages — GC made no net progress",
                    scheme.name(),
                    report.gc.pages_migrated,
                    reclaimable
                );
            }
        }
    }

    /// The Fig. 6 histogram is a distribution: buckets sum to the number of
    /// content invalidations, and with duplicate-heavy traffic at least
    /// some mass lands beyond refcount 1.
    #[test]
    fn refcount_histogram_is_a_distribution(seed in 0u64..1_000) {
        let trace = tiny_trace(seed, 5_000, 0.85, 0.85, 0.6);
        let report = run_cell(SsdConfig::tiny(Scheme::InlineDedup), &trace);
        let total: u64 = report.invalidation_by_refcount.iter().sum();
        if total > 500 {
            prop_assert!(
                report.invalidation_by_refcount[0] > 0,
                "no refcount-1 invalidations at all"
            );
        }
    }

    /// Honored trims are forever: after any sequence of writes, trims and
    /// GC passes, a logical page whose last host operation was a trim is
    /// unmapped — no GC migration ever resurrects it — and every other
    /// page still returns its last written content (GC migrated only live
    /// data).
    #[test]
    fn trimmed_pages_are_never_migrated_by_gc(
        seed in 0u64..1_000,
        trim_fraction in 0.05f64..0.6,
        dedup in 0.0f64..0.9,
    ) {
        let base = tiny_trace(seed, 4_000, dedup, 0.85, 0.7);
        let trace = inject_trims(&base, trim_fraction, 6, seed);
        // The host-visible truth: last write content per LPN, or None if a
        // trim came after it.
        let mut expected: std::collections::HashMap<u64, Option<ContentId>> =
            std::collections::HashMap::new();
        for r in &trace.requests {
            match r.kind {
                OpKind::Write => {
                    for (i, lpn) in r.lpns().enumerate() {
                        expected.insert(lpn, Some(r.contents[i]));
                    }
                }
                OpKind::Trim => {
                    for lpn in r.lpns() {
                        expected.insert(lpn, None);
                    }
                }
                OpKind::Read => {}
            }
        }
        for scheme in Scheme::EXTENDED {
            let mut ssd = Ssd::new(SsdConfig::tiny(scheme));
            let report = ssd.replay(&trace);
            ssd.audit().map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", scheme.name()))
            })?;
            prop_assert!(report.gc.invocations > 0 || report.trims > 0);
            for (&lpn, &want) in &expected {
                prop_assert_eq!(
                    ssd.stored_content(lpn), want,
                    "{}: lpn {} after {} GC rounds", scheme.name(), lpn,
                    report.gc.invocations
                );
            }
        }
    }
}

/// The acceptance-criteria direction: on the same seeded trim-heavy
/// workload, a device that honors trims migrates fewer pages and erases
/// fewer blocks than one that ignores them — trims act as dynamic
/// overprovisioning (Frankie et al.).
#[test]
fn honoring_trims_reduces_migrations_and_erases() {
    let base = tiny_trace(97, 9_000, 0.4, 0.9, 0.8);
    let trace = inject_trims(&base, 0.35, 6, 97);
    for scheme in [Scheme::Baseline, Scheme::Cagc] {
        let honoring = run_cell(SsdConfig::tiny(scheme), &trace);
        let mut blind_cfg = SsdConfig::tiny(scheme);
        blind_cfg.honor_trim = false;
        let blind = run_cell(blind_cfg, &trace);
        assert!(honoring.gc.invocations > 0, "{}: GC never ran", scheme.name());
        assert!(
            honoring.gc.pages_migrated < blind.gc.pages_migrated,
            "{}: honoring migrated {} vs blind {}",
            scheme.name(),
            honoring.gc.pages_migrated,
            blind.gc.pages_migrated
        );
        assert!(
            honoring.gc.blocks_erased < blind.gc.blocks_erased,
            "{}: honoring erased {} vs blind {}",
            scheme.name(),
            honoring.gc.blocks_erased,
            blind.gc.blocks_erased
        );
        assert!(
            honoring.waf() < blind.waf(),
            "{}: honoring WAF {} vs blind {}",
            scheme.name(),
            honoring.waf(),
            blind.waf()
        );
        assert!(honoring.trim_invalidated_pages > 0);
        assert_eq!(blind.trim_invalidated_pages, 0);
    }
}
