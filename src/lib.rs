//! # CAGC — Content-Aware Garbage Collection for ultra-low-latency SSDs
//!
//! A from-scratch Rust reproduction of *"CAGC: A Content-aware Garbage
//! Collection Scheme for Ultra-Low Latency Flash-based SSDs"* (Wu, Du, Li,
//! Jiang, Shen, Mao — IPDPS 2021): a full event-driven SSD simulator
//! (FlashSim-class), a page-mapping FTL with three victim-selection
//! policies, a deduplication substrate (from-scratch SHA-1/256,
//! reference-counted fingerprint index), FIU-like content-carrying
//! workloads, and the three schemes the paper compares — **Baseline**,
//! **Inline-Dedupe**, and **CAGC** itself.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof and provides a [`prelude`]. See the individual crates for depth:
//!
//! | crate | what it is |
//! |-------|------------|
//! | [`sim`] | discrete-event substrate: clock, event queue, resource timelines |
//! | [`flash`] | NAND device model: geometry, page/block state machine, Table I timing |
//! | [`dedup`] | SHA-1/SHA-256, fingerprint index with refcounts, hash engine |
//! | [`ftl`] | mapping table, reverse map, region allocator, victim policies |
//! | [`core`] | the schemes: `Ssd`, content-aware GC (preemptible slices), reports |
//! | [`host`] | NVMe-style multi-queue host interface: SQ/CQ pairs, doorbells, interrupt coalescing, GC pump |
//! | [`workloads`] | traces, FIU-like generators, parsers, file scenarios |
//! | [`metrics`] | latency histograms, CDFs, summary stats, report tables |
//! | [`trace`] | deterministic tracing: spans over simulated time, Chrome/JSONL export, gauge registry |
//!
//! ## Quickstart
//!
//! ```
//! use cagc::prelude::*;
//!
//! // A Mail-like deduplicating workload against a small ULL SSD.
//! let trace = FiuWorkload::Mail.synth_config(4_000, 2_000, 7).generate();
//! let mut ssd = Ssd::new(SsdConfig::tiny(Scheme::Cagc));
//! let report = ssd.replay(&trace);
//!
//! assert!(report.gc.dedup_hits > 0); // GC eliminated redundant writes
//! println!("{}", report.render());
//! ```
//!
//! Regenerate the paper's tables and figures with the harness:
//!
//! ```bash
//! cargo run --release -p cagc-bench --bin repro -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use cagc_core as core;
pub use cagc_dedup as dedup;
pub use cagc_flash as flash;
pub use cagc_fleet as fleet;
pub use cagc_ftl as ftl;
pub use cagc_host as host;
pub use cagc_metrics as metrics;
pub use cagc_sim as sim;
pub use cagc_trace as trace;
pub use cagc_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use cagc_core::{
        run_cell, run_cells, FaultReport, RecoveryReport, RunReport, Scheme, Ssd, SsdConfig,
    };
    pub use cagc_dedup::{ContentId, Fingerprint, FingerprintIndex};
    pub use cagc_flash::{FaultConfig, FlashDevice, FlashError, Geometry, Timing, UllConfig};
    pub use cagc_ftl::{VictimKind, Region};
    pub use cagc_host::{HostConfig, HostInterface, HostReport};
    pub use cagc_metrics::{Cdf, Histogram};
    pub use cagc_trace::{TraceConfig, Tracer};
    pub use cagc_workloads::{
        inject_trims, FileWorkloadBuilder, FiuWorkload, OpKind, Request, SynthConfig, Trace,
        TraceProfile,
    };
}
